open W5_difc
open W5_obs

type 'a r = ('a, Os_error.t) result

let pid (ctx : Kernel.ctx) = ctx.proc.Proc.pid
let my_labels (ctx : Kernel.ctx) = ctx.proc.Proc.labels
let my_caps (ctx : Kernel.ctx) = ctx.proc.Proc.caps
let my_owner (ctx : Kernel.ctx) = ctx.proc.Proc.owner
let usage (ctx : Kernel.ctx) kind = Resource.used ctx.proc.Proc.usage kind

(* Every syscall passes through [charge]; exceeding a limit raises and
   the kernel kills the process, so quotas cannot be probed safely. *)
let charge (ctx : Kernel.ctx) kind n =
  Metrics.inc (Kernel.meters ctx.kernel).Kernel.quota_units
    ~labels:[ ("kind", Resource.kind_to_string kind) ]
    ~by:n;
  match Resource.charge ctx.proc.Proc.usage ctx.proc.Proc.limits kind n with
  | Ok () -> ()
  | Error k -> raise (Kernel.Quota_kill k)

(* Syscall entry: one CPU unit, one clock tick, one telemetry count.
   [op] is the syscall name — a closed, low-cardinality set. *)
let enter ctx op =
  charge ctx Resource.Cpu 1;
  Kernel.advance_clock ctx.Kernel.kernel;
  Metrics.inc (Kernel.meters ctx.Kernel.kernel).Kernel.syscalls
    ~labels:[ ("op", op) ]

(* Bracket a syscall body: time it on the logical clock into the
   kernel's per-op latency histogram, and (only when the tracer is
   enabled, e.g. under `w5 stats --trace`) wrap it in a trace span.
   [t0] is read before [enter] advances the clock, so even the
   simplest syscall observes its own crossing; composite syscalls
   (gate invocations, tainting reads) observe every tick they drove. *)
let dispatch ctx op f =
  let kernel = ctx.Kernel.kernel in
  (* Dispatch entry is the kernel-crossing boundary: the only point
     where a scheduler may preempt the running process. Fired before
     the audit batch opens so a suspension never splits a batch. *)
  Kernel.preempt_point kernel ctx.Kernel.proc;
  let clock () = Kernel.tick kernel in
  let timed () =
    (* Batch the syscall's audit appends: a call that passes its checks
       pays one log append (and one capacity check) at dispatch exit,
       not one per recorded event. *)
    Kernel.with_audit_batch kernel @@ fun () ->
    Perf.time (Kernel.meters kernel).Kernel.syscall_ticks
      ~labels:[ ("op", op) ] ~clock f
  in
  let tracer = Kernel.tracer kernel in
  if not (Tracer.enabled tracer) then timed ()
  else Tracer.with_span tracer ~clock ("sys." ^ op) timed

let enforcing (ctx : Kernel.ctx) = Kernel.enforcing ctx.kernel

let audit_flow ctx ~op ?(subject = Audit.No_subject) ~src ~dst decision =
  Kernel.record ctx.Kernel.kernel ~pid:(pid ctx)
    (Audit.Flow_checked { op; src; dst; decision; subject })

let decision_label = function Ok () -> "allow" | Error _ -> "deny"

let meter_flow ctx ~op ~(src : Flow.labels) decision =
  let meters = Kernel.meters ctx.Kernel.kernel in
  Metrics.inc meters.Kernel.flow_checks
    ~labels:[ ("op", op); ("decision", decision_label decision) ];
  Metrics.observe meters.Kernel.flow_check_src_size
    (Label.cardinal src.Flow.secrecy);
  let tracer = Kernel.tracer ctx.Kernel.kernel in
  if Tracer.enabled tracer then
    Tracer.event tracer ~tick:(Kernel.tick ctx.Kernel.kernel) "flow.check"
      ~fields:
        [ ("op", op);
          ("decision", decision_label decision);
          ("src_secrecy", string_of_int (Label.cardinal src.Flow.secrecy)) ]

(* Flow check helper: returns [Ok ()] when enforcement is off, records
   denials in the audit log together with the object the check guarded
   ([subject]) so a denial can later be traced to a concrete path or
   peer. *)
let check_flow ctx ~op ~subject ~src ~dst =
  if not (enforcing ctx) then Ok ()
  else
    let decision = Flow.check_flow src dst in
    meter_flow ctx ~op ~src decision;
    (match decision with
    | Ok () -> ()
    | Error _ -> audit_flow ctx ~op ~subject ~src ~dst decision);
    Result.map_error (fun d -> Os_error.Denied d) decision

(* Absorbing someone else's secrecy taint (a tainting read, an IPC
   receive, a gate response) is normally free, but *restricted* tags —
   read protection, §3.1 — require the [t+] capability before they may
   enter the caller's label. *)
(* [via] names the operation that caused the absorption and [subject]
   the object the taint came from; together they give the audit log
   the causal edge (file -> process, peer -> process) provenance
   reconstruction walks. *)
let absorb ctx ?(via = "absorb") ?(subject = Audit.No_subject)
    (incoming : Flow.labels) =
  let proc = ctx.Kernel.proc in
  let blocked =
    if not (enforcing ctx) then Label.empty
    else
      Label.filter
        (fun t ->
          Tag.restricted t
          && (not (Label.mem t proc.Proc.labels.Flow.secrecy))
          && not (Capability.Set.can_add t proc.Proc.caps))
        incoming.Flow.secrecy
  in
  if Label.is_empty blocked then begin
    if enforcing ctx then meter_flow ctx ~op:"absorb" ~src:incoming (Ok ());
    let added =
      Label.diff incoming.Flow.secrecy proc.Proc.labels.Flow.secrecy
    in
    proc.Proc.labels <- Flow.join proc.Proc.labels incoming;
    if not (Label.is_empty added) then
      Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
        (Audit.Tainted { op = via; subject; added });
    Ok ()
  end
  else begin
    meter_flow ctx ~op:"absorb" ~src:incoming
      (Error (Flow.Unauthorized_add blocked));
    audit_flow ctx ~op:"absorb" ~subject ~src:incoming ~dst:proc.Proc.labels
      (Error (Flow.Unauthorized_add blocked));
    Error (Os_error.Denied (Flow.Unauthorized_add blocked))
  end

(* {1 Tags and labels} *)

let absorb_labels ctx incoming =
  dispatch ctx "label.absorb" @@ fun () ->
  enter ctx "label.absorb";
  absorb ctx ~via:"label.absorb" incoming

let create_tag ctx ?name ?restricted kind =
  dispatch ctx "tag.create" @@ fun () ->
  enter ctx "tag.create";
  let tag = Tag.fresh ?name ?restricted kind in
  ctx.Kernel.proc.Proc.caps <-
    Capability.Set.grant_dual tag ctx.Kernel.proc.Proc.caps;
  Ok tag

(* The platform's label-change conventions: secrecy may always grow
   and integrity may always shrink; the opposite directions require
   the matching capability. *)
let check_label_change_conv ~caps ~(old_labels : Flow.labels)
    ~(new_labels : Flow.labels) =
  let dropped_secrecy =
    Label.diff old_labels.Flow.secrecy new_labels.Flow.secrecy
  in
  let bad_drops =
    Label.filter
      (fun t -> not (Capability.Set.can_drop t caps))
      dropped_secrecy
  in
  if not (Label.is_empty bad_drops) then
    Error (Flow.Unauthorized_drop bad_drops)
  else
    let added_secrecy =
      Label.diff new_labels.Flow.secrecy old_labels.Flow.secrecy
    in
    let bad_secrecy_adds =
      Label.filter
        (fun t -> Tag.restricted t && not (Capability.Set.can_add t caps))
        added_secrecy
    in
    if not (Label.is_empty bad_secrecy_adds) then
      Error (Flow.Unauthorized_add bad_secrecy_adds)
    else
      let added_integrity =
        Label.diff new_labels.Flow.integrity old_labels.Flow.integrity
      in
      let bad_adds =
        Label.filter
          (fun t -> not (Capability.Set.can_add t caps))
          added_integrity
      in
      if not (Label.is_empty bad_adds) then
        Error (Flow.Unauthorized_add bad_adds)
      else Ok ()

let set_labels ctx new_labels =
  dispatch ctx "label.set" @@ fun () ->
  enter ctx "label.set";
  let proc = ctx.Kernel.proc in
  let decision =
    if not (enforcing ctx) then Ok ()
    else
      check_label_change_conv ~caps:proc.Proc.caps
        ~old_labels:proc.Proc.labels ~new_labels
  in
  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
    (Audit.Label_changed
       { old_labels = proc.Proc.labels; new_labels; decision });
  match decision with
  | Error d -> Error (Os_error.Denied d)
  | Ok () ->
      proc.Proc.labels <- new_labels;
      Ok ()

let add_taint ctx taint =
  dispatch ctx "label.taint" @@ fun () ->
  enter ctx "label.taint";
  (* self-tainting only raises secrecy; it says nothing about (and
     must not erode) the caller's integrity *)
  absorb ctx ~via:"label.taint"
    (Flow.make ~secrecy:taint
       ~integrity:ctx.Kernel.proc.Proc.labels.Flow.integrity ())

let declassify_self ctx ?(context = "self") tag =
  dispatch ctx "label.declassify" @@ fun () ->
  enter ctx "label.declassify";
  let proc = ctx.Kernel.proc in
  if enforcing ctx && not (Capability.Set.can_drop tag proc.Proc.caps) then
    Error (Os_error.Denied (Flow.Unauthorized_drop (Label.singleton tag)))
  else begin
    proc.Proc.labels <-
      {
        proc.Proc.labels with
        Flow.secrecy = Label.remove tag proc.Proc.labels.Flow.secrecy;
      };
    Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
      (Audit.Declassified { tag; context });
    Ok ()
  end

let endorse_self ctx tag =
  dispatch ctx "label.endorse" @@ fun () ->
  enter ctx "label.endorse";
  let proc = ctx.Kernel.proc in
  if enforcing ctx && not (Capability.Set.can_add tag proc.Proc.caps) then
    Error (Os_error.Denied (Flow.Unauthorized_add (Label.singleton tag)))
  else begin
    proc.Proc.labels <-
      {
        proc.Proc.labels with
        Flow.integrity = Label.add tag proc.Proc.labels.Flow.integrity;
      };
    Ok ()
  end

let drop_integrity ctx tag =
  dispatch ctx "label.drop_integrity" @@ fun () ->
  enter ctx "label.drop_integrity";
  let proc = ctx.Kernel.proc in
  proc.Proc.labels <-
    {
      proc.Proc.labels with
      Flow.integrity = Label.remove tag proc.Proc.labels.Flow.integrity;
    };
  Ok ()

let grant_cap ctx ~to_ cap =
  dispatch ctx "cap.grant" @@ fun () ->
  enter ctx "cap.grant";
  let proc = ctx.Kernel.proc in
  if enforcing ctx && not (Capability.Set.mem cap proc.Proc.caps) then
    Error (Os_error.Permission "grant_cap: capability not owned")
  else
    match Kernel.find_proc ctx.Kernel.kernel to_ with
    | None -> Error (Os_error.No_such_process to_)
    | Some target when not (Proc.is_alive target) ->
        Error (Os_error.Dead_process to_)
    | Some target -> (
        match
          check_flow ctx ~op:"cap.grant" ~subject:(Audit.Peer to_)
            ~src:proc.Proc.labels ~dst:target.Proc.labels
        with
        | Error _ as e -> e
        | Ok () ->
            target.Proc.caps <- Capability.Set.add cap target.Proc.caps;
            Ok ())

let drop_cap ctx cap =
  dispatch ctx "cap.drop" @@ fun () ->
  enter ctx "cap.drop";
  let proc = ctx.Kernel.proc in
  proc.Proc.caps <- Capability.Set.remove cap proc.Proc.caps;
  Ok ()

(* {1 Filesystem} *)

let fs ctx = Kernel.fs ctx.Kernel.kernel

let mkdir ctx path ~labels =
  dispatch ctx "fs.mkdir" @@ fun () ->
  enter ctx "fs.mkdir";
  charge ctx Resource.Files 1;
  let proc = ctx.Kernel.proc in
  match Fs.parent_labels (fs ctx) path with
  | Error _ as e -> e
  | Ok parent -> (
      match
        check_flow ctx ~op:"fs.mkdir" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
      with
      | Error _ as e -> e
      | Ok () -> (
          match
            check_flow ctx ~op:"fs.mkdir.labels" ~subject:(Audit.File path)
              ~src:proc.Proc.labels ~dst:labels
          with
          | Error _ as e -> e
          | Ok () -> (
              match Fs.mkdir (fs ctx) path ~labels with
              | Error _ as e -> e
              | Ok () ->
                  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                    (Audit.Object_labeled { op = "fs.mkdir"; path; labels });
                  Ok ())))

let create_file ctx path ~labels ~data =
  dispatch ctx "fs.create" @@ fun () ->
  enter ctx "fs.create";
  charge ctx Resource.Files 1;
  charge ctx Resource.Disk (String.length data);
  let proc = ctx.Kernel.proc in
  match Fs.parent_labels (fs ctx) path with
  | Error _ as e -> e
  | Ok parent -> (
      match
        check_flow ctx ~op:"fs.create" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
      with
      | Error _ as e -> e
      | Ok () -> (
          match
            check_flow ctx ~op:"fs.create.labels" ~subject:(Audit.File path)
              ~src:proc.Proc.labels ~dst:labels
          with
          | Error _ as e -> e
          | Ok () -> (
              match Fs.create_file (fs ctx) path ~labels ~data with
              | Error _ as e -> e
              | Ok () ->
                  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                    (Audit.Object_labeled { op = "fs.create"; path; labels });
                  Ok ())))

let read_file ctx path =
  dispatch ctx "fs.read" @@ fun () ->
  enter ctx "fs.read";
  let proc = ctx.Kernel.proc in
  match Fs.read (fs ctx) path with
  | Error _ as e -> e
  | Ok (data, labels) -> (
      match Fs.path_taint (fs ctx) path with
      | Error _ as e -> e
      | Ok lookup -> (
          (* Reading is a flow from the file to the process: secrecy
             accumulates the lookup path's taint; the integrity
             condition considers the file alone (directories do not
             vouch for their contents). A high-integrity process may
             not strict-read low-integrity data — it must taint-read
             (eroding its label) instead. *)
          let src = Flow.raise_secrecy lookup.Flow.secrecy labels in
          match
            check_flow ctx ~op:"fs.read" ~subject:(Audit.File path) ~src
              ~dst:proc.Proc.labels
          with
          | Error _ as e -> e
          | Ok () ->
              charge ctx Resource.Memory (String.length data);
              Ok data))

let read_file_taint ctx path =
  dispatch ctx "fs.read_taint" @@ fun () ->
  enter ctx "fs.read_taint";
  match Fs.read (fs ctx) path with
  | Error _ as e -> e
  | Ok (data, labels) -> (
      match Fs.path_taint (fs ctx) path with
      | Error _ as e -> e
      | Ok lookup -> (
          (* The lookup path adds secrecy but says nothing about
             integrity; only the file itself erodes the reader's
             integrity label. *)
          let incoming = Flow.raise_secrecy lookup.Flow.secrecy labels in
          match
            absorb ctx ~via:"fs.read_taint" ~subject:(Audit.File path)
              incoming
          with
          | Error _ as e -> e
          | Ok () ->
              charge ctx Resource.Memory (String.length data);
              Ok data))

let write_check ctx ~op path =
  let proc = ctx.Kernel.proc in
  match Fs.stat (fs ctx) path with
  | Error _ as e -> e
  | Ok st ->
      check_flow ctx ~op ~subject:(Audit.File path) ~src:proc.Proc.labels
        ~dst:st.Fs.labels

let write_file ctx path ~data =
  dispatch ctx "fs.write" @@ fun () ->
  enter ctx "fs.write";
  charge ctx Resource.Disk (String.length data);
  match write_check ctx ~op:"fs.write" path with
  | Error _ as e -> e
  | Ok () -> Fs.write (fs ctx) path ~data

let append_file ctx path ~data =
  dispatch ctx "fs.append" @@ fun () ->
  enter ctx "fs.append";
  charge ctx Resource.Disk (String.length data);
  match write_check ctx ~op:"fs.append" path with
  | Error _ as e -> e
  | Ok () -> Fs.append (fs ctx) path ~data

let unlink ctx path =
  dispatch ctx "fs.unlink" @@ fun () ->
  enter ctx "fs.unlink";
  let proc = ctx.Kernel.proc in
  match Fs.parent_labels (fs ctx) path with
  | Error _ as e -> e
  | Ok parent -> (
      match
        check_flow ctx ~op:"fs.unlink.dir" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
      with
      | Error _ as e -> e
      | Ok () -> (
          (* Deleting is a write to the object itself: write
             protection (integrity) must authorize it. *)
          match write_check ctx ~op:"fs.unlink" path with
          | Error _ as e -> e
          | Ok () -> Fs.unlink (fs ctx) path))

let rename ctx ~src ~dst =
  dispatch ctx "fs.rename" @@ fun () ->
  enter ctx "fs.rename";
  let proc = ctx.Kernel.proc in
  let parent_check label path =
    match Fs.parent_labels (fs ctx) path with
    | Error _ as e -> e
    | Ok parent ->
        check_flow ctx ~op:label ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
  in
  match parent_check "fs.rename.src" src with
  | Error _ as e -> e
  | Ok () -> (
      match parent_check "fs.rename.dst" dst with
      | Error _ as e -> e
      | Ok () -> (
          match write_check ctx ~op:"fs.rename" src with
          | Error _ as e -> e
          | Ok () -> Fs.rename (fs ctx) ~src ~dst))

let set_file_labels ctx path ~labels =
  dispatch ctx "fs.relabel" @@ fun () ->
  enter ctx "fs.relabel";
  let proc = ctx.Kernel.proc in
  match Fs.stat (fs ctx) path with
  | Error _ as e -> e
  | Ok st -> (
      match
        check_flow ctx ~op:"fs.relabel" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:st.Fs.labels
      with
      | Error _ as e -> e
      | Ok () ->
          let decision =
            if not (enforcing ctx) then Ok ()
            else
              check_label_change_conv ~caps:proc.Proc.caps
                ~old_labels:st.Fs.labels ~new_labels:labels
          in
          (match decision with
          | Ok () -> ()
          | Error _ ->
              Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                (Audit.Label_changed
                   { old_labels = st.Fs.labels; new_labels = labels; decision }));
          (match decision with
          | Error d -> Error (Os_error.Denied d)
          | Ok () -> (
              match Fs.set_labels (fs ctx) path ~labels with
              | Error _ as e -> e
              | Ok () ->
                  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                    (Audit.Object_labeled { op = "fs.relabel"; path; labels });
                  Ok ())))

let readdir ctx path =
  dispatch ctx "fs.readdir" @@ fun () ->
  enter ctx "fs.readdir";
  let proc = ctx.Kernel.proc in
  match Fs.readdir (fs ctx) path with
  | Error _ as e -> e
  | Ok (names, labels) -> (
      let src =
        { labels with Flow.integrity = proc.Proc.labels.Flow.integrity }
      in
      match
        check_flow ctx ~op:"fs.readdir" ~subject:(Audit.File path) ~src
          ~dst:proc.Proc.labels
      with
      | Error _ as e -> e
      | Ok () -> Ok names)

let stat ctx path =
  dispatch ctx "fs.stat" @@ fun () ->
  enter ctx "fs.stat";
  Fs.stat (fs ctx) path

let file_exists ctx path =
  (* probe only: charged but does not advance the logical clock *)
  charge ctx Resource.Cpu 1;
  Metrics.inc (Kernel.meters ctx.Kernel.kernel).Kernel.syscalls
    ~labels:[ ("op", "fs.exists") ];
  Fs.exists (fs ctx) path

(* {1 IPC} *)

let send ctx ~to_ ?(grant = Capability.Set.empty) ?(use_caps = false) body =
  dispatch ctx "ipc.send" @@ fun () ->
  enter ctx "ipc.send";
  charge ctx Resource.Messages 1;
  let proc = ctx.Kernel.proc in
  if
    enforcing ctx
    && not (Capability.Set.subset grant proc.Proc.caps)
  then Error (Os_error.Permission "send: granted capability not owned")
  else
    match Kernel.find_proc ctx.Kernel.kernel to_ with
    | None -> Error (Os_error.No_such_process to_)
    | Some target when not (Proc.is_alive target) ->
        Error (Os_error.Dead_process to_)
    | Some target -> (
        (* A capability-exercising endpoint sheds every secrecy tag the
           sender holds [t-] for: the message leaves declassified. *)
        let declassified, effective_labels =
          if use_caps then begin
            let droppable =
              Label.filter
                (fun t -> Capability.Set.can_drop t proc.Proc.caps)
                proc.Proc.labels.Flow.secrecy
            in
            ( droppable,
              {
                proc.Proc.labels with
                Flow.secrecy = Label.diff proc.Proc.labels.Flow.secrecy droppable;
              } )
          end
          else (Label.empty, proc.Proc.labels)
        in
        match
          check_flow ctx ~op:"ipc.send" ~subject:(Audit.Peer to_)
            ~src:effective_labels ~dst:target.Proc.labels
        with
        | Error _ as e -> e
        | Ok () ->
            Label.iter
              (fun tag ->
                Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                  (Audit.Declassified { tag; context = "ipc.send" }))
              declassified;
            Queue.add
              {
                Proc.sender = proc.Proc.pid;
                msg_labels = effective_labels;
                body;
                granted = grant;
              }
              target.Proc.mailbox;
            Ok ())

let recv ctx =
  dispatch ctx "ipc.recv" @@ fun () ->
  enter ctx "ipc.recv";
  let proc = ctx.Kernel.proc in
  match Queue.take_opt proc.Proc.mailbox with
  | None -> Ok None
  | Some msg -> (
      (* A message the receiver may not absorb is dropped, not
         re-queued: a blocked head must not wedge the mailbox. *)
      match
        absorb ctx ~via:"ipc.recv" ~subject:(Audit.Peer msg.Proc.sender)
          msg.Proc.msg_labels
      with
      | Error _ as e -> e
      | Ok () ->
          charge ctx Resource.Memory (String.length msg.Proc.body);
          proc.Proc.caps <- Capability.Set.union proc.Proc.caps msg.Proc.granted;
          Ok (Some msg))

(* {1 Processes and gates} *)

let spawn ctx ~name ?labels ?(caps = Capability.Set.empty)
    ?(limits = Resource.default_app_limits) body =
  dispatch ctx "proc.spawn" @@ fun () ->
  enter ctx "proc.spawn";
  let proc = ctx.Kernel.proc in
  let labels = Option.value labels ~default:proc.Proc.labels in
  Kernel.spawn ctx.Kernel.kernel ~parent:proc ~name ~owner:proc.Proc.owner
    ~labels ~caps ~limits body

let invoke_gate ctx name ~arg =
  dispatch ctx "gate.invoke" @@ fun () ->
  enter ctx "gate.invoke";
  let proc = ctx.Kernel.proc in
  match Kernel.invoke_gate ctx.Kernel.kernel ~caller:proc ~name ~arg with
  | Error _ as e -> e
  | Ok child -> (
      match child.Proc.response with
      | None -> Ok None
      | Some (data, labels) -> (
          (* The answer flows back: absorb its secrecy taint. *)
          match
            absorb ctx ~via:"gate.invoke"
              ~subject:(Audit.Peer child.Proc.pid) labels
          with
          | Error _ as e -> e
          | Ok () ->
              charge ctx Resource.Memory (String.length data);
              Ok (Some (data, labels))))

let respond ctx data =
  dispatch ctx "proc.respond" @@ fun () ->
  enter ctx "proc.respond";
  charge ctx Resource.Memory (String.length data);
  let proc = ctx.Kernel.proc in
  proc.Proc.response <- Some (data, proc.Proc.labels);
  Ok ()

let consume ctx ~cpu =
  Kernel.preempt_point ctx.Kernel.kernel ctx.Kernel.proc;
  charge ctx Resource.Cpu cpu;
  Kernel.advance_clock ctx.Kernel.kernel;
  Metrics.inc (Kernel.meters ctx.Kernel.kernel).Kernel.syscalls
    ~labels:[ ("op", "proc.consume") ];
  Ok ()

let debug_note ctx note =
  dispatch ctx "debug.note" @@ fun () ->
  enter ctx "debug.note";
  Kernel.record ctx.Kernel.kernel ~pid:(pid ctx) (Audit.App_note note);
  Ok ()
