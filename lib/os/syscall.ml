open W5_difc
open W5_obs

type 'a r = ('a, Os_error.t) result

(* {1 Syscall footprints}

   One declarative record per operation, stating which pieces of label
   state the op reads and writes, which label facts its action safety
   *depends* on, and which of those it *revalidates* inside the same
   dispatch. The static interference analysis (lib/analysis) consumes
   this table instead of re-deriving footprints from prose.

   The table cannot drift from the implementation because the records
   below are not merely documentation: [dispatch] takes the spec, uses
   [op] for every metric/trace/histogram label, and consults
   [entry_preempt] to decide whether to cross the scheduler's
   preemption point. A test additionally drives every op once under a
   counting preempt hook and checks the observed crossings against the
   table. *)
module Spec = struct
  (* The unit of interference: one addressable piece of label state.
     Subject_* cells are the calling process's own mutable label state;
     Object_labels / Dir_summary belong to filesystem nodes; Peer_*
     cells are another process's label state touched through IPC,
     capability grants, or spawning. *)
  type cell =
    | Subject_secrecy
    | Subject_integrity
    | Subject_caps
    | Object_labels
    | Dir_summary
    | Peer_labels
    | Peer_caps

  (* How a write combines with the cell's current value. [Merge] and
     [Retract] are the semilattice directions (join with / remove from
     the current tag set); [Assign] replaces wholesale. The
     commutativity judgment in lib/analysis keys on this. *)
  type write_kind = Merge | Assign | Retract

  type t = {
    op : string;  (** the dispatch/metric/audit name of the syscall *)
    reads : cell list;  (** label state inspected by the op *)
    writes : (cell * write_kind) list;  (** label state mutated *)
    depends : cell list;
        (** cells whose value the op's *action* safety rests on: a
            flow-check input whose change could invalidate the check *)
    revalidates : cell list;
        (** the subset of [depends] re-checked inside this same atomic
            dispatch — a dependency not revalidated is TOCTOU bait *)
    entry_preempt : bool;
        (** whether this op crosses [Kernel.preempt_point] at entry
            (probe-only ops do not) *)
  }

  let cell_name = function
    | Subject_secrecy -> "subject_secrecy"
    | Subject_integrity -> "subject_integrity"
    | Subject_caps -> "subject_caps"
    | Object_labels -> "object_labels"
    | Dir_summary -> "dir_summary"
    | Peer_labels -> "peer_labels"
    | Peer_caps -> "peer_caps"

  let write_kind_name = function
    | Merge -> "merge"
    | Assign -> "assign"
    | Retract -> "retract"

  (* Smart constructor: unless stated otherwise an op revalidates
     everything it depends on (all checks run inside the dispatch),
     and every dispatched op crosses the entry preemption point. *)
  let v ?(reads = []) ?(writes = []) ?(depends = []) ?revalidates
      ?(entry_preempt = true) op =
    let revalidates = Option.value revalidates ~default:depends in
    { op; reads; writes; depends; revalidates; entry_preempt }

  let label_absorb =
    v "label.absorb"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps ]
      ~writes:[ (Subject_secrecy, Merge); (Subject_integrity, Merge) ]
      ~depends:[ Subject_caps ]

  let tag_create = v "tag.create" ~writes:[ (Subject_caps, Merge) ]

  let label_set =
    v "label.set"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps ]
      ~writes:[ (Subject_secrecy, Assign); (Subject_integrity, Assign) ]
      ~depends:[ Subject_caps ]

  let label_taint =
    v "label.taint"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps ]
      ~writes:[ (Subject_secrecy, Merge) ]
      ~depends:[ Subject_caps ]

  let label_declassify =
    v "label.declassify" ~reads:[ Subject_caps ]
      ~writes:[ (Subject_secrecy, Retract) ]
      ~depends:[ Subject_caps ]

  let label_endorse =
    v "label.endorse" ~reads:[ Subject_caps ]
      ~writes:[ (Subject_integrity, Merge) ]
      ~depends:[ Subject_caps ]

  let label_drop_integrity =
    v "label.drop_integrity" ~writes:[ (Subject_integrity, Retract) ]

  let cap_grant =
    v "cap.grant"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps; Peer_labels ]
      ~writes:[ (Peer_caps, Merge) ]
      ~depends:[ Subject_caps; Peer_labels ]

  let cap_drop = v "cap.drop" ~writes:[ (Subject_caps, Retract) ]

  let fs_mkdir =
    v "fs.mkdir"
      ~reads:[ Subject_secrecy; Subject_integrity; Dir_summary ]
      ~writes:[ (Object_labels, Assign); (Dir_summary, Merge) ]
      ~depends:[ Dir_summary ]

  let fs_create =
    v "fs.create"
      ~reads:[ Subject_secrecy; Subject_integrity; Dir_summary ]
      ~writes:[ (Object_labels, Assign); (Dir_summary, Merge) ]
      ~depends:[ Dir_summary ]

  let fs_read =
    v "fs.read"
      ~reads:[ Subject_secrecy; Subject_integrity; Object_labels; Dir_summary ]
      ~depends:[ Object_labels; Dir_summary ]

  let fs_read_taint =
    v "fs.read_taint"
      ~reads:[ Subject_caps; Object_labels; Dir_summary ]
      ~writes:[ (Subject_secrecy, Merge); (Subject_integrity, Merge) ]
      ~depends:[ Subject_caps ]

  let fs_write =
    v "fs.write"
      ~reads:[ Subject_secrecy; Subject_integrity; Object_labels ]
      ~depends:[ Object_labels ]

  let fs_append =
    v "fs.append"
      ~reads:[ Subject_secrecy; Subject_integrity; Object_labels ]
      ~depends:[ Object_labels ]

  let fs_unlink =
    v "fs.unlink"
      ~reads:[ Subject_secrecy; Subject_integrity; Object_labels; Dir_summary ]
      ~writes:[ (Object_labels, Retract); (Dir_summary, Retract) ]
      ~depends:[ Object_labels; Dir_summary ]

  let fs_rename =
    v "fs.rename"
      ~reads:[ Subject_secrecy; Subject_integrity; Object_labels; Dir_summary ]
      ~writes:[ (Dir_summary, Retract); (Dir_summary, Merge) ]
      ~depends:[ Object_labels; Dir_summary ]

  let fs_relabel =
    v "fs.relabel"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps; Object_labels ]
      ~writes:[ (Object_labels, Assign) ]
      ~depends:[ Object_labels; Subject_caps ]

  let fs_readdir =
    v "fs.readdir"
      ~reads:[ Subject_secrecy; Subject_integrity; Dir_summary ]
      ~depends:[ Dir_summary ]

  let fs_stat = v "fs.stat" ~reads:[ Object_labels ]
  let fs_exists = v "fs.exists" ~reads:[ Dir_summary ] ~entry_preempt:false

  let ipc_send =
    v "ipc.send"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps; Peer_labels ]
      ~depends:[ Subject_caps; Peer_labels ]

  let ipc_recv =
    v "ipc.recv"
      ~reads:[ Subject_caps; Peer_labels ]
      ~writes:
        [ (Subject_secrecy, Merge);
          (Subject_integrity, Merge);
          (Subject_caps, Merge) ]
      ~depends:[ Subject_caps ]

  let proc_spawn =
    v "proc.spawn"
      ~reads:[ Subject_secrecy; Subject_integrity; Subject_caps ]
      ~writes:[ (Peer_labels, Assign); (Peer_caps, Assign) ]
      ~depends:[ Subject_caps ]

  let gate_invoke =
    v "gate.invoke"
      ~reads:[ Subject_caps; Peer_labels ]
      ~writes:[ (Subject_secrecy, Merge); (Subject_integrity, Merge) ]
      ~depends:[ Subject_caps ]

  let proc_respond =
    v "proc.respond"
      ~reads:[ Subject_secrecy; Subject_integrity ]
      ~depends:[ Subject_secrecy; Subject_integrity ]

  let proc_consume = v "proc.consume"
  let debug_note = v "debug.note"

  let all =
    [ label_absorb;
      tag_create;
      label_set;
      label_taint;
      label_declassify;
      label_endorse;
      label_drop_integrity;
      cap_grant;
      cap_drop;
      fs_mkdir;
      fs_create;
      fs_read;
      fs_read_taint;
      fs_write;
      fs_append;
      fs_unlink;
      fs_rename;
      fs_relabel;
      fs_readdir;
      fs_stat;
      fs_exists;
      ipc_send;
      ipc_recv;
      proc_spawn;
      gate_invoke;
      proc_respond;
      debug_note;
      proc_consume ]

  let find op = List.find_opt (fun s -> s.op = op) all
end

let pid (ctx : Kernel.ctx) = ctx.proc.Proc.pid
let my_labels (ctx : Kernel.ctx) = ctx.proc.Proc.labels
let my_caps (ctx : Kernel.ctx) = ctx.proc.Proc.caps
let my_owner (ctx : Kernel.ctx) = ctx.proc.Proc.owner
let usage (ctx : Kernel.ctx) kind = Resource.used ctx.proc.Proc.usage kind

(* Every syscall passes through [charge]; exceeding a limit raises and
   the kernel kills the process, so quotas cannot be probed safely. *)
let charge (ctx : Kernel.ctx) kind n =
  Metrics.inc (Kernel.meters ctx.kernel).Kernel.quota_units
    ~labels:[ ("kind", Resource.kind_to_string kind) ]
    ~by:n;
  match Resource.charge ctx.proc.Proc.usage ctx.proc.Proc.limits kind n with
  | Ok () -> ()
  | Error k -> raise (Kernel.Quota_kill k)

(* Syscall entry: one CPU unit, one clock tick, one telemetry count.
   [op] is the syscall name — a closed, low-cardinality set. *)
let enter ctx op =
  charge ctx Resource.Cpu 1;
  Kernel.advance_clock ctx.Kernel.kernel;
  Metrics.inc (Kernel.meters ctx.Kernel.kernel).Kernel.syscalls
    ~labels:[ ("op", op) ]

(* Bracket a syscall body: time it on the logical clock into the
   kernel's per-op latency histogram, and (only when the tracer is
   enabled, e.g. under `w5 stats --trace`) wrap it in a trace span.
   [t0] is read before [enter] advances the clock, so even the
   simplest syscall observes its own crossing; composite syscalls
   (gate invocations, tainting reads) observe every tick they drove. *)
let dispatch ctx (spec : Spec.t) f =
  let kernel = ctx.Kernel.kernel in
  let op = spec.Spec.op in
  (* Dispatch entry is the kernel-crossing boundary: the only point
     where a scheduler may preempt the running process. Fired before
     the audit batch opens so a suspension never splits a batch.
     Whether an op crosses it is part of its declared footprint. *)
  if spec.Spec.entry_preempt then Kernel.preempt_point kernel ctx.Kernel.proc;
  let clock () = Kernel.tick kernel in
  let timed () =
    (* Batch the syscall's audit appends: a call that passes its checks
       pays one log append (and one capacity check) at dispatch exit,
       not one per recorded event. *)
    Kernel.with_audit_batch kernel @@ fun () ->
    Perf.time (Kernel.meters kernel).Kernel.syscall_ticks
      ~labels:[ ("op", op) ] ~clock
      (fun () ->
        enter ctx op;
        f ())
  in
  let tracer = Kernel.tracer kernel in
  if not (Tracer.enabled tracer) then timed ()
  else Tracer.with_span tracer ~clock ("sys." ^ op) timed

let enforcing (ctx : Kernel.ctx) = Kernel.enforcing ctx.kernel

let audit_flow ctx ~op ?(subject = Audit.No_subject) ~src ~dst decision =
  Kernel.record ctx.Kernel.kernel ~pid:(pid ctx)
    (Audit.Flow_checked { op; src; dst; decision; subject })

let decision_label = function Ok () -> "allow" | Error _ -> "deny"

let meter_flow ctx ~op ~(src : Flow.labels) decision =
  let meters = Kernel.meters ctx.Kernel.kernel in
  Metrics.inc meters.Kernel.flow_checks
    ~labels:[ ("op", op); ("decision", decision_label decision) ];
  Metrics.observe meters.Kernel.flow_check_src_size
    (Label.cardinal src.Flow.secrecy);
  let tracer = Kernel.tracer ctx.Kernel.kernel in
  if Tracer.enabled tracer then
    Tracer.event tracer ~tick:(Kernel.tick ctx.Kernel.kernel) "flow.check"
      ~fields:
        [ ("op", op);
          ("decision", decision_label decision);
          ("src_secrecy", string_of_int (Label.cardinal src.Flow.secrecy)) ]

(* Flow check helper: returns [Ok ()] when enforcement is off, records
   denials in the audit log together with the object the check guarded
   ([subject]) so a denial can later be traced to a concrete path or
   peer. *)
let check_flow ctx ~op ~subject ~src ~dst =
  if not (enforcing ctx) then Ok ()
  else
    let decision = Flow.check_flow src dst in
    meter_flow ctx ~op ~src decision;
    (match decision with
    | Ok () -> ()
    | Error _ -> audit_flow ctx ~op ~subject ~src ~dst decision);
    Result.map_error (fun d -> Os_error.Denied d) decision

(* Absorbing someone else's secrecy taint (a tainting read, an IPC
   receive, a gate response) is normally free, but *restricted* tags —
   read protection, §3.1 — require the [t+] capability before they may
   enter the caller's label. *)
(* [via] names the operation that caused the absorption and [subject]
   the object the taint came from; together they give the audit log
   the causal edge (file -> process, peer -> process) provenance
   reconstruction walks. *)
let absorb ctx ?(via = "absorb") ?(subject = Audit.No_subject)
    (incoming : Flow.labels) =
  let proc = ctx.Kernel.proc in
  let blocked =
    if not (enforcing ctx) then Label.empty
    else
      Label.filter
        (fun t ->
          Tag.restricted t
          && (not (Label.mem t proc.Proc.labels.Flow.secrecy))
          && not (Capability.Set.can_add t proc.Proc.caps))
        incoming.Flow.secrecy
  in
  if Label.is_empty blocked then begin
    if enforcing ctx then meter_flow ctx ~op:"absorb" ~src:incoming (Ok ());
    let added =
      Label.diff incoming.Flow.secrecy proc.Proc.labels.Flow.secrecy
    in
    proc.Proc.labels <- Flow.join proc.Proc.labels incoming;
    if not (Label.is_empty added) then
      Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
        (Audit.Tainted { op = via; subject; added });
    Ok ()
  end
  else begin
    meter_flow ctx ~op:"absorb" ~src:incoming
      (Error (Flow.Unauthorized_add blocked));
    audit_flow ctx ~op:"absorb" ~subject ~src:incoming ~dst:proc.Proc.labels
      (Error (Flow.Unauthorized_add blocked));
    Error (Os_error.Denied (Flow.Unauthorized_add blocked))
  end

(* {1 Tags and labels} *)

let absorb_labels ctx incoming =
  dispatch ctx Spec.label_absorb @@ fun () ->
  absorb ctx ~via:"label.absorb" incoming

let create_tag ctx ?name ?restricted kind =
  dispatch ctx Spec.tag_create @@ fun () ->
  let tag = Tag.fresh ?name ?restricted kind in
  ctx.Kernel.proc.Proc.caps <-
    Capability.Set.grant_dual tag ctx.Kernel.proc.Proc.caps;
  Ok tag

(* The platform's label-change conventions: secrecy may always grow
   and integrity may always shrink; the opposite directions require
   the matching capability. *)
let check_label_change_conv ~caps ~(old_labels : Flow.labels)
    ~(new_labels : Flow.labels) =
  let dropped_secrecy =
    Label.diff old_labels.Flow.secrecy new_labels.Flow.secrecy
  in
  let bad_drops =
    Label.filter
      (fun t -> not (Capability.Set.can_drop t caps))
      dropped_secrecy
  in
  if not (Label.is_empty bad_drops) then
    Error (Flow.Unauthorized_drop bad_drops)
  else
    let added_secrecy =
      Label.diff new_labels.Flow.secrecy old_labels.Flow.secrecy
    in
    let bad_secrecy_adds =
      Label.filter
        (fun t -> Tag.restricted t && not (Capability.Set.can_add t caps))
        added_secrecy
    in
    if not (Label.is_empty bad_secrecy_adds) then
      Error (Flow.Unauthorized_add bad_secrecy_adds)
    else
      let added_integrity =
        Label.diff new_labels.Flow.integrity old_labels.Flow.integrity
      in
      let bad_adds =
        Label.filter
          (fun t -> not (Capability.Set.can_add t caps))
          added_integrity
      in
      if not (Label.is_empty bad_adds) then
        Error (Flow.Unauthorized_add bad_adds)
      else Ok ()

let set_labels ctx new_labels =
  dispatch ctx Spec.label_set @@ fun () ->
  let proc = ctx.Kernel.proc in
  let decision =
    if not (enforcing ctx) then Ok ()
    else
      check_label_change_conv ~caps:proc.Proc.caps
        ~old_labels:proc.Proc.labels ~new_labels
  in
  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
    (Audit.Label_changed
       { old_labels = proc.Proc.labels; new_labels; decision });
  match decision with
  | Error d -> Error (Os_error.Denied d)
  | Ok () ->
      proc.Proc.labels <- new_labels;
      Ok ()

let add_taint ctx taint =
  dispatch ctx Spec.label_taint @@ fun () ->
  (* self-tainting only raises secrecy; it says nothing about (and
     must not erode) the caller's integrity *)
  absorb ctx ~via:"label.taint"
    (Flow.make ~secrecy:taint
       ~integrity:ctx.Kernel.proc.Proc.labels.Flow.integrity ())

let declassify_self ctx ?(context = "self") tag =
  dispatch ctx Spec.label_declassify @@ fun () ->
  let proc = ctx.Kernel.proc in
  if enforcing ctx && not (Capability.Set.can_drop tag proc.Proc.caps) then
    Error (Os_error.Denied (Flow.Unauthorized_drop (Label.singleton tag)))
  else begin
    proc.Proc.labels <-
      {
        proc.Proc.labels with
        Flow.secrecy = Label.remove tag proc.Proc.labels.Flow.secrecy;
      };
    Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
      (Audit.Declassified { tag; context });
    Ok ()
  end

let endorse_self ctx tag =
  dispatch ctx Spec.label_endorse @@ fun () ->
  let proc = ctx.Kernel.proc in
  if enforcing ctx && not (Capability.Set.can_add tag proc.Proc.caps) then
    Error (Os_error.Denied (Flow.Unauthorized_add (Label.singleton tag)))
  else begin
    proc.Proc.labels <-
      {
        proc.Proc.labels with
        Flow.integrity = Label.add tag proc.Proc.labels.Flow.integrity;
      };
    Ok ()
  end

let drop_integrity ctx tag =
  dispatch ctx Spec.label_drop_integrity @@ fun () ->
  let proc = ctx.Kernel.proc in
  proc.Proc.labels <-
    {
      proc.Proc.labels with
      Flow.integrity = Label.remove tag proc.Proc.labels.Flow.integrity;
    };
  Ok ()

let grant_cap ctx ~to_ cap =
  dispatch ctx Spec.cap_grant @@ fun () ->
  let proc = ctx.Kernel.proc in
  if enforcing ctx && not (Capability.Set.mem cap proc.Proc.caps) then
    Error (Os_error.Permission "grant_cap: capability not owned")
  else
    match Kernel.find_proc ctx.Kernel.kernel to_ with
    | None -> Error (Os_error.No_such_process to_)
    | Some target when not (Proc.is_alive target) ->
        Error (Os_error.Dead_process to_)
    | Some target -> (
        match
          check_flow ctx ~op:"cap.grant" ~subject:(Audit.Peer to_)
            ~src:proc.Proc.labels ~dst:target.Proc.labels
        with
        | Error _ as e -> e
        | Ok () ->
            target.Proc.caps <- Capability.Set.add cap target.Proc.caps;
            Ok ())

let drop_cap ctx cap =
  dispatch ctx Spec.cap_drop @@ fun () ->
  let proc = ctx.Kernel.proc in
  proc.Proc.caps <- Capability.Set.remove cap proc.Proc.caps;
  Ok ()

(* {1 Filesystem} *)

let fs ctx = Kernel.fs ctx.Kernel.kernel

let mkdir ctx path ~labels =
  dispatch ctx Spec.fs_mkdir @@ fun () ->
  charge ctx Resource.Files 1;
  let proc = ctx.Kernel.proc in
  match Fs.parent_labels (fs ctx) path with
  | Error _ as e -> e
  | Ok parent -> (
      match
        check_flow ctx ~op:"fs.mkdir" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
      with
      | Error _ as e -> e
      | Ok () -> (
          match
            check_flow ctx ~op:"fs.mkdir.labels" ~subject:(Audit.File path)
              ~src:proc.Proc.labels ~dst:labels
          with
          | Error _ as e -> e
          | Ok () -> (
              match Fs.mkdir (fs ctx) path ~labels with
              | Error _ as e -> e
              | Ok () ->
                  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                    (Audit.Object_labeled { op = "fs.mkdir"; path; labels });
                  Ok ())))

let create_file ctx path ~labels ~data =
  dispatch ctx Spec.fs_create @@ fun () ->
  charge ctx Resource.Files 1;
  charge ctx Resource.Disk (String.length data);
  let proc = ctx.Kernel.proc in
  match Fs.parent_labels (fs ctx) path with
  | Error _ as e -> e
  | Ok parent -> (
      match
        check_flow ctx ~op:"fs.create" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
      with
      | Error _ as e -> e
      | Ok () -> (
          match
            check_flow ctx ~op:"fs.create.labels" ~subject:(Audit.File path)
              ~src:proc.Proc.labels ~dst:labels
          with
          | Error _ as e -> e
          | Ok () -> (
              match Fs.create_file (fs ctx) path ~labels ~data with
              | Error _ as e -> e
              | Ok () ->
                  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                    (Audit.Object_labeled { op = "fs.create"; path; labels });
                  Ok ())))

let read_file ctx path =
  dispatch ctx Spec.fs_read @@ fun () ->
  let proc = ctx.Kernel.proc in
  match Fs.read (fs ctx) path with
  | Error _ as e -> e
  | Ok (data, labels) -> (
      match Fs.path_taint (fs ctx) path with
      | Error _ as e -> e
      | Ok lookup -> (
          (* Reading is a flow from the file to the process: secrecy
             accumulates the lookup path's taint; the integrity
             condition considers the file alone (directories do not
             vouch for their contents). A high-integrity process may
             not strict-read low-integrity data — it must taint-read
             (eroding its label) instead. *)
          let src = Flow.raise_secrecy lookup.Flow.secrecy labels in
          match
            check_flow ctx ~op:"fs.read" ~subject:(Audit.File path) ~src
              ~dst:proc.Proc.labels
          with
          | Error _ as e -> e
          | Ok () ->
              charge ctx Resource.Memory (String.length data);
              Ok data))

let read_file_taint ctx path =
  dispatch ctx Spec.fs_read_taint @@ fun () ->
  match Fs.read (fs ctx) path with
  | Error _ as e -> e
  | Ok (data, labels) -> (
      match Fs.path_taint (fs ctx) path with
      | Error _ as e -> e
      | Ok lookup -> (
          (* The lookup path adds secrecy but says nothing about
             integrity; only the file itself erodes the reader's
             integrity label. *)
          let incoming = Flow.raise_secrecy lookup.Flow.secrecy labels in
          match
            absorb ctx ~via:"fs.read_taint" ~subject:(Audit.File path)
              incoming
          with
          | Error _ as e -> e
          | Ok () ->
              charge ctx Resource.Memory (String.length data);
              Ok data))

let write_check ctx ~op path =
  let proc = ctx.Kernel.proc in
  match Fs.stat (fs ctx) path with
  | Error _ as e -> e
  | Ok st ->
      check_flow ctx ~op ~subject:(Audit.File path) ~src:proc.Proc.labels
        ~dst:st.Fs.labels

let write_file ctx path ~data =
  dispatch ctx Spec.fs_write @@ fun () ->
  charge ctx Resource.Disk (String.length data);
  match write_check ctx ~op:"fs.write" path with
  | Error _ as e -> e
  | Ok () -> Fs.write (fs ctx) path ~data

let append_file ctx path ~data =
  dispatch ctx Spec.fs_append @@ fun () ->
  charge ctx Resource.Disk (String.length data);
  match write_check ctx ~op:"fs.append" path with
  | Error _ as e -> e
  | Ok () -> Fs.append (fs ctx) path ~data

let unlink ctx path =
  dispatch ctx Spec.fs_unlink @@ fun () ->
  let proc = ctx.Kernel.proc in
  match Fs.parent_labels (fs ctx) path with
  | Error _ as e -> e
  | Ok parent -> (
      match
        check_flow ctx ~op:"fs.unlink.dir" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
      with
      | Error _ as e -> e
      | Ok () -> (
          (* Deleting is a write to the object itself: write
             protection (integrity) must authorize it. *)
          match write_check ctx ~op:"fs.unlink" path with
          | Error _ as e -> e
          | Ok () -> Fs.unlink (fs ctx) path))

let rename ctx ~src ~dst =
  dispatch ctx Spec.fs_rename @@ fun () ->
  let proc = ctx.Kernel.proc in
  let parent_check label path =
    match Fs.parent_labels (fs ctx) path with
    | Error _ as e -> e
    | Ok parent ->
        check_flow ctx ~op:label ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:parent
  in
  match parent_check "fs.rename.src" src with
  | Error _ as e -> e
  | Ok () -> (
      match parent_check "fs.rename.dst" dst with
      | Error _ as e -> e
      | Ok () -> (
          match write_check ctx ~op:"fs.rename" src with
          | Error _ as e -> e
          | Ok () -> Fs.rename (fs ctx) ~src ~dst))

let set_file_labels ctx path ~labels =
  dispatch ctx Spec.fs_relabel @@ fun () ->
  let proc = ctx.Kernel.proc in
  match Fs.stat (fs ctx) path with
  | Error _ as e -> e
  | Ok st -> (
      match
        check_flow ctx ~op:"fs.relabel" ~subject:(Audit.File path)
          ~src:proc.Proc.labels ~dst:st.Fs.labels
      with
      | Error _ as e -> e
      | Ok () ->
          let decision =
            if not (enforcing ctx) then Ok ()
            else
              check_label_change_conv ~caps:proc.Proc.caps
                ~old_labels:st.Fs.labels ~new_labels:labels
          in
          (match decision with
          | Ok () -> ()
          | Error _ ->
              Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                (Audit.Label_changed
                   { old_labels = st.Fs.labels; new_labels = labels; decision }));
          (match decision with
          | Error d -> Error (Os_error.Denied d)
          | Ok () -> (
              match Fs.set_labels (fs ctx) path ~labels with
              | Error _ as e -> e
              | Ok () ->
                  Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                    (Audit.Object_labeled { op = "fs.relabel"; path; labels });
                  Ok ())))

let readdir ctx path =
  dispatch ctx Spec.fs_readdir @@ fun () ->
  let proc = ctx.Kernel.proc in
  match Fs.readdir (fs ctx) path with
  | Error _ as e -> e
  | Ok (names, labels) -> (
      let src =
        { labels with Flow.integrity = proc.Proc.labels.Flow.integrity }
      in
      match
        check_flow ctx ~op:"fs.readdir" ~subject:(Audit.File path) ~src
          ~dst:proc.Proc.labels
      with
      | Error _ as e -> e
      | Ok () -> Ok names)

let stat ctx path =
  dispatch ctx Spec.fs_stat @@ fun () ->
  Fs.stat (fs ctx) path

let file_exists ctx path =
  (* probe only: charged but does not advance the logical clock, and —
     as Spec.fs_exists declares — never crosses the preemption point *)
  charge ctx Resource.Cpu 1;
  Metrics.inc (Kernel.meters ctx.Kernel.kernel).Kernel.syscalls
    ~labels:[ ("op", Spec.fs_exists.Spec.op) ];
  Fs.exists (fs ctx) path

(* {1 IPC} *)

let send ctx ~to_ ?(grant = Capability.Set.empty) ?(use_caps = false) body =
  dispatch ctx Spec.ipc_send @@ fun () ->
  charge ctx Resource.Messages 1;
  let proc = ctx.Kernel.proc in
  if
    enforcing ctx
    && not (Capability.Set.subset grant proc.Proc.caps)
  then Error (Os_error.Permission "send: granted capability not owned")
  else
    match Kernel.find_proc ctx.Kernel.kernel to_ with
    | None -> Error (Os_error.No_such_process to_)
    | Some target when not (Proc.is_alive target) ->
        Error (Os_error.Dead_process to_)
    | Some target -> (
        (* A capability-exercising endpoint sheds every secrecy tag the
           sender holds [t-] for: the message leaves declassified. *)
        let declassified, effective_labels =
          if use_caps then begin
            let droppable =
              Label.filter
                (fun t -> Capability.Set.can_drop t proc.Proc.caps)
                proc.Proc.labels.Flow.secrecy
            in
            ( droppable,
              {
                proc.Proc.labels with
                Flow.secrecy = Label.diff proc.Proc.labels.Flow.secrecy droppable;
              } )
          end
          else (Label.empty, proc.Proc.labels)
        in
        match
          check_flow ctx ~op:"ipc.send" ~subject:(Audit.Peer to_)
            ~src:effective_labels ~dst:target.Proc.labels
        with
        | Error _ as e -> e
        | Ok () ->
            Label.iter
              (fun tag ->
                Kernel.record ctx.Kernel.kernel ~pid:proc.Proc.pid
                  (Audit.Declassified { tag; context = "ipc.send" }))
              declassified;
            Queue.add
              {
                Proc.sender = proc.Proc.pid;
                msg_labels = effective_labels;
                body;
                granted = grant;
              }
              target.Proc.mailbox;
            Ok ())

let recv ctx =
  dispatch ctx Spec.ipc_recv @@ fun () ->
  let proc = ctx.Kernel.proc in
  match Queue.take_opt proc.Proc.mailbox with
  | None -> Ok None
  | Some msg -> (
      (* A message the receiver may not absorb is dropped, not
         re-queued: a blocked head must not wedge the mailbox. *)
      match
        absorb ctx ~via:"ipc.recv" ~subject:(Audit.Peer msg.Proc.sender)
          msg.Proc.msg_labels
      with
      | Error _ as e -> e
      | Ok () ->
          charge ctx Resource.Memory (String.length msg.Proc.body);
          proc.Proc.caps <- Capability.Set.union proc.Proc.caps msg.Proc.granted;
          Ok (Some msg))

(* {1 Processes and gates} *)

let spawn ctx ~name ?labels ?(caps = Capability.Set.empty)
    ?(limits = Resource.default_app_limits) body =
  dispatch ctx Spec.proc_spawn @@ fun () ->
  let proc = ctx.Kernel.proc in
  let labels = Option.value labels ~default:proc.Proc.labels in
  Kernel.spawn ctx.Kernel.kernel ~parent:proc ~name ~owner:proc.Proc.owner
    ~labels ~caps ~limits body

let invoke_gate ctx name ~arg =
  dispatch ctx Spec.gate_invoke @@ fun () ->
  let proc = ctx.Kernel.proc in
  match Kernel.invoke_gate ctx.Kernel.kernel ~caller:proc ~name ~arg with
  | Error _ as e -> e
  | Ok child -> (
      match child.Proc.response with
      | None -> Ok None
      | Some (data, labels) -> (
          (* The answer flows back: absorb its secrecy taint. *)
          match
            absorb ctx ~via:"gate.invoke"
              ~subject:(Audit.Peer child.Proc.pid) labels
          with
          | Error _ as e -> e
          | Ok () ->
              charge ctx Resource.Memory (String.length data);
              Ok (Some (data, labels))))

let respond ctx data =
  dispatch ctx Spec.proc_respond @@ fun () ->
  charge ctx Resource.Memory (String.length data);
  let proc = ctx.Kernel.proc in
  proc.Proc.response <- Some (data, proc.Proc.labels);
  Ok ()

let consume ctx ~cpu =
  (* a quota charge without a dispatched body: still a declared
     preemption point (Spec.proc_consume.entry_preempt) *)
  if Spec.proc_consume.Spec.entry_preempt then
    Kernel.preempt_point ctx.Kernel.kernel ctx.Kernel.proc;
  charge ctx Resource.Cpu cpu;
  Kernel.advance_clock ctx.Kernel.kernel;
  Metrics.inc (Kernel.meters ctx.Kernel.kernel).Kernel.syscalls
    ~labels:[ ("op", Spec.proc_consume.Spec.op) ];
  Ok ()

let debug_note ctx note =
  dispatch ctx Spec.debug_note @@ fun () ->
  Kernel.record ctx.Kernel.kernel ~pid:(pid ctx) (Audit.App_note note);
  Ok ()
