(** Label-aware secondary indexes for the object store.

    A per-collection, per-kernel side table mapping declared field
    values to object ids, consulted by {!Query.select} to shrink the
    set of rows it must read. The index is {b never} a source of
    truth: it is an untrusted hint. Before any candidate row is
    served, the querying process absorbs the whole collection's label
    {!summary} (exactly the taint a full scan would have imposed), and
    every candidate is re-read through {!W5_os.Syscall.read_file_taint}
    with the predicate re-applied — so a stale, corrupt or adversarial
    index can cost performance, never secrecy, integrity or
    correctness. See DESIGN.md ("Indexed queries").

    Consistency is self-checked against the filesystem: each entry is
    stamped with the collection directory's [(generation, version)]
    pair, which {!W5_os.Fs} bumps on any mutation beneath the
    directory — including writes that bypass {!Obj_store}, such as
    federation sync or a snapshot restore. A stale stamp triggers a
    rebuild on next use.

    Telemetry records sizes and outcomes only (hit/fallback/rebuild
    counts, candidate-set cardinalities) — field names and values are
    application data and never appear as label values. *)

open W5_difc
open W5_os

type kind =
  | Equality   (** exact-match postings on a string field *)
  | Int_order  (** ordered postings on an integer field *)

(** An indexable predicate atom, as recognized by the planner. *)
type atom =
  | Eq of string * string
  | At_least of string * int

val declare : Kernel.ctx -> collection:string -> field:string -> kind -> unit
(** Declare [field] indexed in [collection] (idempotent). Takes effect
    at the next query against the collection. Declaring is advisory —
    queries on undeclared fields simply scan. *)

val summary : Kernel.t -> collection:string -> Flow.labels option
(** The join of every row's labels (secrecy union, integrity meet)
    plus the lookup path's taint — i.e. exactly what a full tainting
    scan of the collection would absorb into the caller. [None] when
    the collection is empty (a scan of nothing absorbs nothing).
    Rebuilds the entry if stale. *)

val plan :
  Kernel.t -> collection:string -> atom list ->
  (string list, string) result
(** Candidate ids (sorted, deduplicated) for the first atom that has a
    usable index, or [Error reason] ([reason] is low-cardinality:
    ["undeclared"], ["unindexable"]). Candidates are a superset of the
    matching rows {e for that atom alone}; the caller must re-read and
    re-filter. Collections containing stray sub-directories or
    non-canonical on-disk names are refused — a scan behaves
    differently there, and the two paths must stay equivalent. *)

val meter_query_fallback : Kernel.t -> string -> unit
(** Count a scan fallback under
    [w5_store_index_fallbacks_total{reason}]. *)

(** {1 Maintenance hooks}

    Called by {!Obj_store} around its own mutations, and by federation
    code after writes that bypass the store. *)

val before_mutate : Kernel.t -> collection:string -> bool
(** Call {e before} an Obj_store put/delete: [true] iff the entry is
    currently valid, in which case the matching [note_*] call may
    update it incrementally; otherwise the entry stays invalid until
    the next rebuild. *)

val note_put :
  Kernel.t -> fresh:bool -> collection:string -> id:string -> unit
(** After a successful put. [fresh] is {!before_mutate}'s answer. *)

val note_delete :
  Kernel.t -> fresh:bool -> collection:string -> id:string -> unit
(** After a successful delete. [fresh] is {!before_mutate}'s answer. *)

val note_external_write : Kernel.t -> path:string -> unit
(** Invalidate the entry owning [path] if it lies under the store
    root; no-op otherwise. Federation sync/migrate call this for every
    path they write — cheap insurance on top of the fs stamp. *)
