open W5_os

type id = string
type predicate = Record.t -> bool

let always _ = true

let field_equals key value r = Record.get r key = Some value

let field_contains key needle r =
  match Record.get r key with
  | None -> false
  | Some v ->
      let vn = String.length v and nn = String.length needle in
      if nn = 0 then true
      else
        let rec scan i =
          i + nn <= vn && (String.sub v i nn = needle || scan (i + 1))
        in
        scan 0

let field_int_at_least key threshold r =
  match Record.get_int r key with
  | None -> false
  | Some n -> n >= threshold

let has_field key r = Record.mem r key
let ( &&& ) p q r = p r && q r
let ( ||| ) p q r = p r || q r
let not_ p r = not (p r)

(* Query telemetry records sizes only (rows scanned, rows returned):
   counts are shaped like label sizes, not like record contents. *)
let meter_scanned ctx n =
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter
       (Kernel.metrics ctx.Kernel.kernel)
       "w5_store_rows_scanned_total"
       ~help:"Rows visited by store queries")
    ~by:n

let meter_rows ctx n =
  W5_obs.Metrics.observe
    (W5_obs.Metrics.histogram
       (Kernel.metrics ctx.Kernel.kernel)
       "w5_store_query_rows"
       ~help:"Result-set sizes of store queries")
    n

let scan ctx ~collection ~read ~init ~f =
  match Obj_store.list ctx ~collection with
  | Error _ as e -> e
  | Ok ids ->
      meter_scanned ctx (List.length ids);
      let step acc id =
        match acc with
        | Error _ as e -> e
        | Ok acc -> (
            match read ctx (Obj_store.object_path collection id) with
            | Error e -> Error (`Row (id, e))
            | Ok data -> (
                match Record.decode data with
                | Error _ -> Ok acc (* undecodable rows are skipped *)
                | Ok record -> Ok (f acc id record)))
      in
      Result.map_error
        (fun (`Row (_, e)) -> e)
        (List.fold_left step (Ok init) ids)

let select ?limit ctx ~collection ~where =
  let truncate results =
    match limit with
    | None -> results
    | Some n -> List.filteri (fun i _ -> i < n) results
  in
  Result.map
    (fun acc ->
      let results = truncate (List.rev acc) in
      meter_rows ctx (List.length results);
      results)
    (scan ctx ~collection ~read:Syscall.read_file_taint ~init:[]
       ~f:(fun acc id record ->
         if where record then (id, record) :: acc else acc))

let select_leaky ctx ~collection ~where =
  match Obj_store.list ctx ~collection with
  | Error _ as e -> e
  | Ok ids ->
      let step acc id =
        match Syscall.read_file ctx (Obj_store.object_path collection id) with
        | Error _ -> acc (* unreadable rows silently vanish: the leak *)
        | Ok data -> (
            match Record.decode data with
            | Error _ -> acc
            | Ok record -> if where record then (id, record) :: acc else acc)
      in
      let results = List.rev (List.fold_left step [] ids) in
      meter_rows ctx (List.length results);
      Ok results

let count ctx ~collection ~where =
  Result.map List.length (select ctx ~collection ~where)

let fold ctx ~collection ~init ~f =
  scan ctx ~collection ~read:Syscall.read_file_taint ~init ~f
