open W5_os

type id = string

(* Predicates are reified so the planner can look inside them; [eval]
   gives them back their old meaning as functions. *)
type predicate =
  | Always
  | Field_equals of string * string
  | Field_contains of string * string
  | Field_int_at_least of string * int
  | Has_field of string
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate
  | Custom of (Record.t -> bool)

let always = Always
let field_equals key value = Field_equals (key, value)
let field_contains key needle = Field_contains (key, needle)
let field_int_at_least key threshold = Field_int_at_least (key, threshold)
let has_field key = Has_field key
let ( &&& ) p q = And (p, q)
let ( ||| ) p q = Or (p, q)
let not_ p = Not p
let custom f = Custom f

(* Iterative substring search: field values can be megabytes, and one
   stack frame per character overflows. *)
let contains ~needle haystack =
  let vn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + nn <= vn do
      if String.sub haystack !i nn = needle then found := true else incr i
    done;
    !found
  end

let rec eval p r =
  match p with
  | Always -> true
  | Field_equals (key, value) -> Record.get r key = Some value
  | Field_contains (key, needle) -> (
      match Record.get r key with
      | None -> false
      | Some v -> contains ~needle v)
  | Field_int_at_least (key, threshold) -> (
      match Record.get_int r key with
      | None -> false
      | Some n -> n >= threshold)
  | Has_field key -> Record.mem r key
  | And (p, q) -> eval p r && eval q r
  | Or (p, q) -> eval p r || eval q r
  | Not p -> not (eval p r)
  | Custom f -> f r

(* Indexable atoms of the conjunction spine. An atom only has to be
   {e necessary} for the predicate (candidates form a superset of the
   matches); disjunctions and negations offer no such atom. *)
let rec atoms_of = function
  | Field_equals (key, value) -> [ Index.Eq (key, value) ]
  | Field_int_at_least (key, threshold) -> [ Index.At_least (key, threshold) ]
  | And (p, q) -> atoms_of p @ atoms_of q
  | Always | Field_contains _ | Has_field _ | Or _ | Not _ | Custom _ -> []

(* Query telemetry records sizes only (rows scanned, rows returned):
   counts are shaped like label sizes, not like record contents. *)
let meter_scanned ctx n =
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter
       (Kernel.metrics ctx.Kernel.kernel)
       "w5_store_rows_scanned_total"
       ~help:"Rows visited by store queries")
    ~by:n

let meter_rows ctx n =
  W5_obs.Metrics.observe
    (W5_obs.Metrics.histogram
       (Kernel.metrics ctx.Kernel.kernel)
       "w5_store_query_rows"
       ~help:"Result-set sizes of store queries")
    n

(* The taint a query imposes must depend only on the collection's
   contents — never on which rows the planner chose to visit, or the
   taint itself becomes a channel about the skipped rows. Both the
   scanning and the indexed paths therefore absorb the collection-wide
   label summary (the exact join a full tainting scan would reach)
   before reading anything. Restricted tags deny here, identically in
   both paths. *)
let absorb_summary ctx ~collection =
  match Index.summary ctx.Kernel.kernel ~collection with
  | None -> Ok ()
  | Some labels -> Syscall.absorb_labels ctx labels

let scan ctx ~collection ~read ~init ~f =
  match Obj_store.list ctx ~collection with
  | Error _ as e -> e
  | Ok ids -> (
      match absorb_summary ctx ~collection with
      | Error _ as e -> e
      | Ok () ->
          meter_scanned ctx (List.length ids);
          let step acc id =
            match acc with
            | Error _ as e -> e
            | Ok acc -> (
                match read ctx (Obj_store.object_path collection id) with
                | Error e -> Error (`Row (id, e))
                | Ok data -> (
                    match Record.decode data with
                    | Error _ -> Ok acc (* undecodable rows are skipped *)
                    | Ok record -> Ok (f acc id record)))
          in
          Result.map_error
            (fun (`Row (_, e)) -> e)
            (List.fold_left step (Ok init) ids))

let select ?limit ?(use_index = true) ctx ~collection ~where =
  match Obj_store.list ctx ~collection with
  | Error _ as e -> e
  | Ok ids -> (
      match absorb_summary ctx ~collection with
      | Error _ as e -> e
      | Ok () -> (
          let kernel = ctx.Kernel.kernel in
          let candidates =
            if not use_index then ids
            else
              match atoms_of where with
              | [] ->
                  Index.meter_query_fallback kernel "predicate";
                  ids
              | atoms -> (
                  match Index.plan kernel ~collection atoms with
                  | Ok candidate_ids -> candidate_ids
                  | Error reason ->
                      Index.meter_query_fallback kernel reason;
                      ids)
          in
          (* Candidates are a hint, nothing more: every one is re-read
             through the syscall layer and re-checked against the full
             predicate. Visiting stops once [limit] rows match — safe
             now that the taint was settled above, independent of how
             far we get. *)
          let full = match limit with None -> max_int | Some n -> n in
          let rec visit acc found = function
            | [] -> Ok (List.rev acc)
            | _ when found >= full -> Ok (List.rev acc)
            | id :: rest -> (
                meter_scanned ctx 1;
                match
                  Syscall.read_file_taint ctx
                    (Obj_store.object_path collection id)
                with
                | Error e -> Error e
                | Ok data -> (
                    match Record.decode data with
                    | Error _ -> visit acc found rest
                    | Ok record ->
                        if eval where record then
                          visit ((id, record) :: acc) (found + 1) rest
                        else visit acc found rest))
          in
          match visit [] 0 candidates with
          | Error _ as e -> e
          | Ok results ->
              meter_rows ctx (List.length results);
              Ok results))

let select_leaky ctx ~collection ~where =
  match Obj_store.list ctx ~collection with
  | Error _ as e -> e
  | Ok ids ->
      let step acc id =
        match Syscall.read_file ctx (Obj_store.object_path collection id) with
        | Error _ -> acc (* unreadable rows silently vanish: the leak *)
        | Ok data -> (
            match Record.decode data with
            | Error _ -> acc
            | Ok record -> if eval where record then (id, record) :: acc else acc)
      in
      let results = List.rev (List.fold_left step [] ids) in
      meter_rows ctx (List.length results);
      Ok results

let count ctx ~collection ~where =
  Result.map List.length (select ctx ~collection ~where)

let fold ctx ~collection ~init ~f =
  scan ctx ~collection ~read:Syscall.read_file_taint ~init ~f
