(** The covert-channel-safe query engine.

    §3.5 of the paper notes that "the SQL interface to databases can
    leak information implicitly and thus needs to be replaced under
    W5". The leak is through result {e shape}: whether a row appears
    in (or is absent from) a result tells the querier something about
    data it may not be tainted by.

    The replacement rule implemented here: a query taints the caller
    with the join of the labels of {b every row in the collection} —
    the collection's label summary — before any row is served. Absence
    then carries no exploitable signal: by the time the caller learns
    the shape, it is already tainted by everything that could have
    shaped it and cannot export the knowledge. Because the taint is
    settled up front and does not depend on which rows are actually
    visited, evaluation is free to visit {e fewer} rows: the planner
    consults {!Index} for candidate ids when the predicate contains an
    indexable conjunct, and [limit] stops the walk early. Every
    candidate is still re-read through the syscall layer with the full
    predicate re-applied — the index can never bypass a label check or
    serve a stale row (see DESIGN.md, "Indexed queries").

    {!select_leaky} implements the classic (unsafe) semantics — skip
    rows the caller cannot read — and exists only as the baseline arm
    of experiment E8 and its ablation bench.

    Every visited row also costs CPU quota, so a malicious query
    cannot monopolize the database (§3.5 "resource allocation"): it
    dies by quota instead. *)

open W5_os

type id = string

type predicate
(** Reified so the planner can recognize indexable atoms; apply one
    with {!eval}. *)

val always : predicate
val field_equals : string -> string -> predicate
val field_contains : string -> string -> predicate
(** Substring match on the field's value; absent field never matches. *)

val field_int_at_least : string -> int -> predicate
val has_field : string -> predicate
val ( &&& ) : predicate -> predicate -> predicate
val ( ||| ) : predicate -> predicate -> predicate
val not_ : predicate -> predicate

val custom : (Record.t -> bool) -> predicate
(** An opaque predicate: always evaluated by scan, never indexed. *)

val eval : predicate -> Record.t -> bool

val select :
  ?limit:int -> ?use_index:bool -> Kernel.ctx -> collection:string ->
  where:predicate -> ((id * Record.t) list, Os_error.t) result
(** Safe semantics: absorb the collection's label summary, then return
    decoded matches in id order. Rows that fail to decode are skipped.

    [limit] short-circuits the walk once that many rows match; the
    taint (already settled) is unaffected, so pagination no longer
    costs a full read of the collection.

    [use_index] (default [true]) lets the planner serve candidates
    from {!Index} when the predicate's conjunction spine contains a
    [field_equals] or [field_int_at_least] atom over a declared field.
    [~use_index:false] forces the scan path — results are identical by
    construction (the equivalence property test holds the two paths to
    that), only the number of rows visited differs. *)

val select_leaky :
  Kernel.ctx -> collection:string -> where:predicate ->
  ((id * Record.t) list, Os_error.t) result
(** Unsafe baseline: strict reads, silently skipping rows the caller
    may not see. Result shape leaks. Kept for experiment E8 only. *)

val count :
  Kernel.ctx -> collection:string -> where:predicate ->
  (int, Os_error.t) result
(** [List.length] of {!select}, with the same taint semantics. *)

val fold :
  Kernel.ctx -> collection:string -> init:'a ->
  f:('a -> id -> Record.t -> 'a) -> ('a, Os_error.t) result
(** Safe full-collection fold (taints like {!select}, visits every
    row). *)
