open W5_difc
open W5_os

type id = string

let root = "/store"

let init ctx =
  match Syscall.mkdir ctx root ~labels:Flow.bottom with
  | Ok () -> Ok ()
  | Error (Os_error.Already_exists _) -> Ok ()
  | Error _ as e -> e

let sanitize name =
  String.map (fun c -> if c = '/' then '_' else c) name

(* Store-level op counts ride the owning kernel's registry. Only the
   op name is recorded — never collection or object ids, which are
   application-chosen strings. *)
let meter ctx op =
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter
       (Kernel.metrics ctx.Kernel.kernel)
       "w5_store_ops_total"
       ~help:"Object store operations by kind")
    ~labels:[ ("op", op) ]

let collection_path collection = root ^ "/" ^ sanitize collection
let object_path collection id = collection_path collection ^ "/" ^ sanitize id

let create_collection ctx collection ~labels =
  match Syscall.mkdir ctx (collection_path collection) ~labels with
  | Ok () -> Ok ()
  | Error (Os_error.Already_exists _) -> Ok ()
  | Error _ as e -> e

let put ctx ~collection ~id ~labels record =
  meter ctx "put";
  let path = object_path collection id in
  let data = Record.encode record in
  if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
  else Syscall.create_file ctx path ~labels ~data

let get ctx ?(taint = false) ~collection ~id () =
  meter ctx "get";
  let path = object_path collection id in
  let read = if taint then Syscall.read_file_taint else Syscall.read_file in
  match read ctx path with
  | Error _ as e -> e
  | Ok data ->
      Result.map_error (fun msg -> Os_error.Invalid msg) (Record.decode data)

let delete ctx ~collection ~id =
  meter ctx "delete";
  Syscall.unlink ctx (object_path collection id)

let list ctx ~collection =
  meter ctx "list";
  Syscall.readdir ctx (collection_path collection)

let exists ctx ~collection ~id =
  meter ctx "exists";
  Syscall.file_exists ctx (object_path collection id)

let labels_of ctx ~collection ~id =
  Result.map
    (fun st -> st.Fs.labels)
    (Syscall.stat ctx (object_path collection id))

let version_of ctx ~collection ~id =
  Result.map
    (fun st -> st.Fs.version)
    (Syscall.stat ctx (object_path collection id))
