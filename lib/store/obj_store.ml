open W5_difc
open W5_os

type id = string

let root = Store_path.root

let init ctx =
  match Syscall.mkdir ctx root ~labels:Flow.bottom with
  | Ok () -> Ok ()
  | Error (Os_error.Already_exists _) -> Ok ()
  | Error _ as e -> e

(* Store-level op counts ride the owning kernel's registry. Only the
   op name is recorded — never collection or object ids, which are
   application-chosen strings. *)
let meter ctx op =
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter
       (Kernel.metrics ctx.Kernel.kernel)
       "w5_store_ops_total"
       ~help:"Object store operations by kind")
    ~labels:[ ("op", op) ]

let collection_path = Store_path.collection_path
let object_path = Store_path.object_path

let create_collection ctx collection ~labels =
  match Syscall.mkdir ctx (collection_path collection) ~labels with
  | Ok () -> Ok ()
  | Error (Os_error.Already_exists _) -> Ok ()
  | Error _ as e -> e

let put ctx ~collection ~id ~labels record =
  meter ctx "put";
  let kernel = ctx.Kernel.kernel in
  let path = object_path collection id in
  let data = Record.encode record in
  let fresh = Index.before_mutate kernel ~collection in
  let result =
    if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
    else Syscall.create_file ctx path ~labels ~data
  in
  (match result with
  | Ok () -> Index.note_put kernel ~fresh ~collection ~id
  | Error _ -> ());
  result

let get ctx ?(taint = false) ~collection ~id () =
  meter ctx "get";
  let path = object_path collection id in
  let read = if taint then Syscall.read_file_taint else Syscall.read_file in
  match read ctx path with
  | Error _ as e -> e
  | Ok data ->
      Result.map_error (fun msg -> Os_error.Invalid msg) (Record.decode data)

let delete ctx ~collection ~id =
  meter ctx "delete";
  let kernel = ctx.Kernel.kernel in
  let fresh = Index.before_mutate kernel ~collection in
  let result = Syscall.unlink ctx (object_path collection id) in
  (match result with
  | Ok () -> Index.note_delete kernel ~fresh ~collection ~id
  | Error _ -> ());
  result

let list ctx ~collection =
  meter ctx "list";
  (* readdir yields on-disk (escaped) names; callers work in logical
     ids, which [object_path] re-escapes on the way back down. *)
  Result.map
    (fun names ->
      List.sort String.compare (List.map Store_path.unsanitize names))
    (Syscall.readdir ctx (collection_path collection))

let exists ctx ~collection ~id =
  meter ctx "exists";
  Syscall.file_exists ctx (object_path collection id)

let labels_of ctx ~collection ~id =
  Result.map
    (fun st -> st.Fs.labels)
    (Syscall.stat ctx (object_path collection id))

let version_of ctx ~collection ~id =
  Result.map
    (fun st -> st.Fs.version)
    (Syscall.stat ctx (object_path collection id))
