(* Path conventions for the object store, shared by {!Obj_store} and
   {!Index} (which must agree on where objects live without depending
   on each other).

   Application-chosen collection and object names may contain ['/'],
   which the filesystem reserves. The escaping must be *injective*:
   the seed's [/ -> _] mapping made ["a/b"] and ["a_b"] alias to the
   same file — cross-object clobbering. So ['_'] itself is escaped. *)

let root = "/store"

let sanitize name =
  let buf = Buffer.create (String.length name + 4) in
  String.iter
    (fun c ->
      match c with
      | '_' -> Buffer.add_string buf "__"
      | '/' -> Buffer.add_string buf "_s"
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

(* Inverse of {!sanitize} on its image; lenient elsewhere (an
   unescaped ['_'] from a hand-created file passes through) so
   directory listings never fail. *)
let unsanitize name =
  let n = String.length name in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (if name.[!i] = '_' && !i + 1 < n then
       match name.[!i + 1] with
       | '_' ->
           Buffer.add_char buf '_';
           incr i
       | 's' ->
           Buffer.add_char buf '/';
           incr i
       | _ -> Buffer.add_char buf '_'
     else Buffer.add_char buf name.[!i]);
    incr i
  done;
  Buffer.contents buf

(* [true] iff [name] is something {!sanitize} can produce — i.e. the
   logical id obtained by {!unsanitize} maps back to exactly this
   on-disk name. Raw files smuggled in with bad escapes fail this and
   force queries onto the scan path, which sees the same files the
   same way. *)
let round_trips name = sanitize (unsanitize name) = name

let collection_path collection = root ^ "/" ^ sanitize collection
let object_path collection id = collection_path collection ^ "/" ^ sanitize id
