open W5_difc
open W5_os

type kind =
  | Equality
  | Int_order

type atom =
  | Eq of string * string
  | At_least of string * int

(* Postings attributed to one document, remembered so an overwrite or
   delete can retract exactly what it contributed. *)
type posting =
  | P_eq of string * string
  | P_ord of string * int

module Ord = Map.Make (struct
  type t = int * string

  let compare (a, i) (b, j) =
    match Int.compare a b with 0 -> String.compare i j | c -> c
end)

type doc = {
  d_postings : posting list;
  d_labels : Flow.labels;
}

type entry = {
  fields : (string, kind) Hashtbl.t;
  eq : (string * string, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable ords : (string * string Ord.t) list; (* field -> (value,id) map *)
  docs : (string, doc) Hashtbl.t;
  (* Label summary of the whole collection, maintained as refcounts:
     secrecy = tags with count > 0; integrity = tags present in every
     row (count = row_count). Counts cover *all* children, including
     undecodable rows and stray directories — everything a scan's
     taint would touch. *)
  secrecy_refs : (Tag.t, int) Hashtbl.t;
  integrity_refs : (Tag.t, int) Hashtbl.t;
  mutable row_count : int;
  (* The (secrecy fold, integrity fold) of the refcount tables,
     interned; recomputed lazily after any refcount change. The lookup
     path's taint is *not* part of this — it must stay fresh (see
     [summary]). *)
  mutable summary_cache : (Label.t * Label.t) option;
  (* Candidate sets are only served when [indexable]: no stray
     directories, no on-disk names outside [sanitize]'s image. *)
  mutable indexable : bool;
  (* (fs generation, collection dir version) at last (re)build; [None]
     forces a rebuild. Content writes bump the parent dir's version
     (see Fs), so any mutation under the collection — even one that
     bypasses Obj_store — lands here. *)
  mutable stamp : (int * int) option;
}

(* Per-kernel registries, keyed by Kernel.id so two providers (e.g.
   the federation tests' A and B) never share index state. *)
let registries : (int, (string, entry) Hashtbl.t) Hashtbl.t = Hashtbl.create 4

let registry kernel =
  let kid = Kernel.id kernel in
  match Hashtbl.find_opt registries kid with
  | Some r -> r
  | None ->
      let r = Hashtbl.create 8 in
      Hashtbl.replace registries kid r;
      r

let entry_of kernel collection =
  let reg = registry kernel in
  match Hashtbl.find_opt reg collection with
  | Some e -> e
  | None ->
      let e =
        {
          fields = Hashtbl.create 4;
          eq = Hashtbl.create 16;
          ords = [];
          docs = Hashtbl.create 16;
          secrecy_refs = Hashtbl.create 8;
          integrity_refs = Hashtbl.create 8;
          row_count = 0;
          summary_cache = None;
          indexable = true;
          stamp = None;
        }
      in
      Hashtbl.replace reg collection e;
      e

(* ---- metrics ----
   Sizes and outcomes only: candidate-set cardinalities and low-
   cardinality reason strings. Field names and values never appear —
   they are application data. *)

let m_counter kernel name ~help =
  W5_obs.Metrics.counter (Kernel.metrics kernel) name ~help

let meter_rebuild kernel =
  W5_obs.Metrics.inc
    (m_counter kernel "w5_store_index_rebuilds_total"
       ~help:"Secondary-index rebuilds from the filesystem")

let meter_hit kernel =
  W5_obs.Metrics.inc
    (m_counter kernel "w5_store_index_hits_total"
       ~help:"Queries answered from a secondary index")

let meter_fallback kernel reason =
  W5_obs.Metrics.inc
    (m_counter kernel "w5_store_index_fallbacks_total"
       ~help:"Queries that fell back to a full scan, by reason")
    ~labels:[ ("reason", reason) ]

let meter_candidates kernel n =
  W5_obs.Metrics.observe
    (W5_obs.Metrics.histogram (Kernel.metrics kernel)
       "w5_store_index_candidates"
       ~help:"Candidate-set sizes served by the secondary index")
    n

(* ---- label summary refcounts ---- *)

let refs_add tbl label =
  Label.iter
    (fun t ->
      Hashtbl.replace tbl t
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t)))
    label

let refs_remove tbl label =
  Label.iter
    (fun t ->
      match Hashtbl.find_opt tbl t with
      | None -> ()
      | Some 1 -> Hashtbl.remove tbl t
      | Some n -> Hashtbl.replace tbl t (n - 1))
    label

let count_labels e (labels : Flow.labels) =
  refs_add e.secrecy_refs labels.Flow.secrecy;
  refs_add e.integrity_refs labels.Flow.integrity;
  e.row_count <- e.row_count + 1;
  e.summary_cache <- None

let discount_labels e (labels : Flow.labels) =
  refs_remove e.secrecy_refs labels.Flow.secrecy;
  refs_remove e.integrity_refs labels.Flow.integrity;
  e.row_count <- e.row_count - 1;
  e.summary_cache <- None

(* ---- postings maintenance ---- *)

let ord_of e field =
  match List.assoc_opt field e.ords with Some m -> m | None -> Ord.empty

let set_ord e field m =
  e.ords <- (field, m) :: List.remove_assoc field e.ords

let add_posting e id = function
  | P_eq (f, v) ->
      let ids =
        match Hashtbl.find_opt e.eq (f, v) with
        | Some ids -> ids
        | None ->
            let ids = Hashtbl.create 4 in
            Hashtbl.replace e.eq (f, v) ids;
            ids
      in
      Hashtbl.replace ids id ()
  | P_ord (f, n) -> set_ord e f (Ord.add (n, id) id (ord_of e f))

let remove_posting e id = function
  | P_eq (f, v) -> (
      match Hashtbl.find_opt e.eq (f, v) with
      | None -> ()
      | Some ids ->
          Hashtbl.remove ids id;
          if Hashtbl.length ids = 0 then Hashtbl.remove e.eq (f, v))
  | P_ord (f, n) -> set_ord e f (Ord.remove (n, id) (ord_of e f))

let postings_of e record =
  Hashtbl.fold
    (fun field kind acc ->
      match kind with
      | Equality -> (
          match Record.get record field with
          | None -> acc
          | Some v -> P_eq (field, v) :: acc)
      | Int_order -> (
          match Record.get_int record field with
          | None -> acc
          | Some n -> P_ord (field, n) :: acc))
    e.fields []

let retract_doc e id =
  match Hashtbl.find_opt e.docs id with
  | None -> ()
  | Some doc ->
      List.iter (remove_posting e id) doc.d_postings;
      discount_labels e doc.d_labels;
      Hashtbl.remove e.docs id

let insert_doc e id ~postings ~labels =
  List.iter (add_posting e id) postings;
  count_labels e labels;
  Hashtbl.replace e.docs id { d_postings = postings; d_labels = labels }

(* ---- validity and rebuild ----

   All reads here go straight to Fs: index maintenance is store-
   internal bookkeeping, not an access by the querying process. What
   keeps this safe is that nothing read here ever reaches a caller
   except (a) the label summary, which is *absorbed into* the caller's
   label before any row is served, and (b) candidate ids, which are
   only ever re-read through Syscall with full checks. See DESIGN.md. *)

let current_stamp kernel collection =
  let fs = Kernel.fs kernel in
  match Fs.stat fs (Store_path.collection_path collection) with
  | Ok st when st.Fs.kind = Fs.Directory ->
      Some (Fs.generation fs, st.Fs.version)
  | Ok _ | Error _ -> None

let is_valid kernel collection e =
  match e.stamp with
  | None -> false
  | Some s -> current_stamp kernel collection = Some s

let rebuild kernel collection e =
  meter_rebuild kernel;
  Hashtbl.reset e.eq;
  e.ords <- [];
  Hashtbl.reset e.docs;
  Hashtbl.reset e.secrecy_refs;
  Hashtbl.reset e.integrity_refs;
  e.row_count <- 0;
  e.summary_cache <- None;
  e.indexable <- true;
  e.stamp <- None;
  let fs = Kernel.fs kernel in
  let dir = Store_path.collection_path collection in
  let stamp = current_stamp kernel collection in
  match (stamp, Fs.readdir fs dir) with
  | None, _ | _, Error _ -> ()
  | Some stamp, Ok (names, _) ->
      List.iter
        (fun name ->
          let path = dir ^ "/" ^ name in
          match Fs.read fs path with
          | Error _ ->
              (* a stray sub-directory: a scan aborts on it, so
                 candidate sets must not skip past it *)
              e.indexable <- false;
              (match Fs.stat fs path with
              | Ok st -> count_labels e st.Fs.labels
              | Error _ -> ())
          | Ok (data, labels) ->
              if not (Store_path.round_trips name) then e.indexable <- false;
              let id = Store_path.unsanitize name in
              let postings =
                match Record.decode data with
                | Error _ -> [] (* scans skip undecodable rows too *)
                | Ok record -> postings_of e record
              in
              insert_doc e id ~postings ~labels)
        names;
      e.stamp <- Some stamp

let validate kernel collection =
  let e = entry_of kernel collection in
  if not (is_valid kernel collection e) then rebuild kernel collection e;
  e

(* ---- public API ---- *)

let declare ctx ~collection ~field kind =
  let kernel = ctx.Kernel.kernel in
  let e = entry_of kernel collection in
  (match Hashtbl.find_opt e.fields field with
  | Some k when k = kind -> ()
  | _ ->
      Hashtbl.replace e.fields field kind;
      (* postings for the new field appear at the next rebuild *)
      e.stamp <- None);
  ()

let summary kernel ~collection =
  let e = validate kernel collection in
  if e.row_count = 0 then None
  else
    let secrecy, integrity =
      match e.summary_cache with
      | Some folds -> folds
      | None ->
          (* Interning the folds keeps repeated queries on the same
             collection on the memoized absorb-join path: same content
             ids, so the downstream union/join probes hit. *)
          let secrecy =
            Label.intern
              (Hashtbl.fold
                 (fun t _ acc -> Label.add t acc)
                 e.secrecy_refs Label.empty)
          in
          let integrity =
            Label.intern
              (Hashtbl.fold
                 (fun t n acc ->
                   if n = e.row_count then Label.add t acc else acc)
                 e.integrity_refs Label.empty)
          in
          e.summary_cache <- Some (secrecy, integrity);
          (secrecy, integrity)
    in
    (* The lookup path's taint (root, /store, the collection dir) is
       re-read fresh: ancestor labels can change without touching the
       collection dir's version, so it must not be cached. *)
    let fs = Kernel.fs kernel in
    let path_secrecy =
      match
        Fs.path_taint fs (Store_path.collection_path collection ^ "/x")
      with
      | Ok taint -> taint.Flow.secrecy
      | Error _ -> Label.empty
    in
    Some (Flow.make ~secrecy:(Label.union secrecy path_secrecy) ~integrity ())

let candidates_of e = function
  | Eq (f, v) -> (
      match Hashtbl.find_opt e.fields f with
      | Some Equality ->
          let ids =
            match Hashtbl.find_opt e.eq (f, v) with
            | None -> []
            | Some tbl -> Hashtbl.fold (fun id () acc -> id :: acc) tbl []
          in
          Some (List.sort String.compare ids)
      | Some Int_order | None -> None)
  | At_least (f, n) -> (
      match Hashtbl.find_opt e.fields f with
      | Some Int_order ->
          let ids =
            Ord.fold
              (fun (v, _) id acc -> if v >= n then id :: acc else acc)
              (ord_of e f) []
          in
          Some (List.sort_uniq String.compare ids)
      | Some Equality | None -> None)

let plan kernel ~collection atoms =
  let e = validate kernel collection in
  if not e.indexable then Error "unindexable"
  else
    let rec first = function
      | [] -> Error "undeclared"
      | atom :: rest -> (
          match candidates_of e atom with
          | Some ids -> Ok ids
          | None -> first rest)
    in
    match first atoms with
    | Error _ as err -> err
    | Ok ids ->
        meter_hit kernel;
        meter_candidates kernel (List.length ids);
        Ok ids

let meter_query_fallback = meter_fallback

(* ---- mutation hooks (called by Obj_store) ---- *)

let before_mutate kernel ~collection =
  let reg = registry kernel in
  match Hashtbl.find_opt reg collection with
  | None -> false
  | Some e -> is_valid kernel collection e

let restamp kernel collection e =
  e.stamp <- current_stamp kernel collection

let note_put kernel ~fresh ~collection ~id =
  match Hashtbl.find_opt (registry kernel) collection with
  | None -> ()
  | Some e ->
      if fresh then begin
        retract_doc e id;
        let fs = Kernel.fs kernel in
        (match Fs.read fs (Store_path.object_path collection id) with
        | Error _ -> e.stamp <- None
        | Ok (data, labels) ->
            let postings =
              match Record.decode data with
              | Error _ -> []
              | Ok record -> postings_of e record
            in
            insert_doc e id ~postings ~labels;
            restamp kernel collection e)
      end
      else e.stamp <- None

let note_delete kernel ~fresh ~collection ~id =
  match Hashtbl.find_opt (registry kernel) collection with
  | None -> ()
  | Some e ->
      if fresh then begin
        retract_doc e id;
        restamp kernel collection e
      end
      else e.stamp <- None

let note_external_write kernel ~path =
  let prefix = Store_path.root ^ "/" in
  let plen = String.length prefix in
  if String.length path > plen && String.sub path 0 plen = prefix then begin
    let rest = String.sub path plen (String.length path - plen) in
    let dir =
      match String.index_opt rest '/' with
      | None -> rest
      | Some i -> String.sub rest 0 i
    in
    let collection = Store_path.unsanitize dir in
    match Hashtbl.find_opt (registry kernel) collection with
    | None -> ()
    | Some e -> e.stamp <- None
  end
