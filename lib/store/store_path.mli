(** Path conventions for the object store, shared by {!Obj_store} and
    {!Index} (which must agree on where objects live without depending
    on each other). *)

val root : string
(** The store's root directory, ["/store"]. *)

val sanitize : string -> string
(** Escape an application-chosen name into a filesystem-safe one.
    Injective: ['_'] becomes ["__"] and ['/'] becomes ["_s"], so
    distinct logical names never alias the same on-disk file. *)

val unsanitize : string -> string
(** Inverse of {!sanitize} on its image; lenient elsewhere (a stray
    unescaped ['_'] passes through) so directory listings never
    fail. *)

val round_trips : string -> bool
(** [true] iff the on-disk name is something {!sanitize} can produce,
    i.e. [sanitize (unsanitize name) = name]. Raw files smuggled in
    with bad escapes fail this and force queries onto the scan
    path. *)

val collection_path : string -> string
(** [collection_path c] is the directory holding collection [c]. *)

val object_path : string -> string -> string
(** [object_path c id] is the file holding object [id] of collection
    [c]. *)
