(** The labeled object store.

    A thin convention over the labeled filesystem: objects are
    {!Record.t}s stored at [/store/<collection>/<id>], carrying the
    owner's labels. All access goes through {!W5_os.Syscall}, so every
    read and write is flow-checked exactly like any other file access
    — the store adds no trusted code.

    The [taint] flag selects between strict reads (denied unless the
    caller is already tainted enough) and self-tainting reads (the
    Asbestos-style convenience most applications use). *)

open W5_difc
open W5_os

type id = string

val root : string
(** ["/store"]. Created by {!init}. *)

val init : Kernel.ctx -> (unit, Os_error.t) result
(** Create the store root (idempotent). Usually run by the platform
    at boot. *)

val collection_path : string -> string
val object_path : string -> id -> string
(** Collection and object names are escaped injectively on the way to
    the filesystem ([_] → [__], [/] → [_s]), so distinct logical names
    can never collide on disk; {!list} undoes the escaping. *)

val create_collection :
  Kernel.ctx -> string -> labels:Flow.labels -> (unit, Os_error.t) result

val put :
  Kernel.ctx -> collection:string -> id:id -> labels:Flow.labels ->
  Record.t -> (unit, Os_error.t) result
(** Create or overwrite. Overwrite keeps the object's existing labels
    and is subject to the write-protection (integrity) check. *)

val get :
  Kernel.ctx -> ?taint:bool -> collection:string -> id:id -> unit ->
  (Record.t, Os_error.t) result
(** [taint] defaults to [false] (strict read). *)

val delete :
  Kernel.ctx -> collection:string -> id:id -> (unit, Os_error.t) result

val list :
  Kernel.ctx -> collection:string -> (id list, Os_error.t) result

val exists : Kernel.ctx -> collection:string -> id:id -> bool

val labels_of :
  Kernel.ctx -> collection:string -> id:id -> (Flow.labels, Os_error.t) result

val version_of :
  Kernel.ctx -> collection:string -> id:id -> (int, Os_error.t) result
