type sign =
  | Plus
  | Minus

type t = Tag.t * sign

let make tag sign = (tag, sign)
let tag (t, _) = t
let sign (_, s) = s

let sign_rank = function Plus -> 0 | Minus -> 1

let compare (t1, s1) (t2, s2) =
  match Tag.compare t1 t2 with
  | 0 -> Int.compare (sign_rank s1) (sign_rank s2)
  | c -> c

let equal a b = compare a b = 0

let pp fmt (t, s) =
  Format.fprintf fmt "%a%s" Tag.pp t (match s with Plus -> "+" | Minus -> "-")

module Set = struct
  module S = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  type nonrec t = S.t

  let empty = S.empty
  let is_empty = S.is_empty
  let of_list = S.of_list
  let to_list = S.elements
  let add = S.add
  let remove = S.remove
  let mem = S.mem
  let union = S.union
  let subset = S.subset
  let cardinal = S.cardinal
  let equal = S.equal
  let grant_dual tag o = S.add (tag, Plus) (S.add (tag, Minus) o)
  let can_add tag o = S.mem (tag, Plus) o
  let can_drop tag o = S.mem (tag, Minus) o
  let has_dual tag o = can_add tag o && can_drop tag o

  let addable o =
    S.fold
      (fun (t, s) acc -> match s with Plus -> Label.add t acc | Minus -> acc)
      o Label.empty

  let droppable o =
    S.fold
      (fun (t, s) acc -> match s with Minus -> Label.add t acc | Plus -> acc)
      o Label.empty

  let pp fmt o =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         pp)
      (S.elements o)
end
