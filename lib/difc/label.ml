module S = Set.Make (Tag)

(* A label wraps its tag set with two lazily filled caches: [id], the
   interned-content id (0 = not yet interned), and [card], the
   cardinality (-1 = not yet computed). Content ids come from a
   monotone counter and are never reused, so two labels sharing an id
   are guaranteed equal — the converse does not hold (a pool flush can
   hand the same content a fresh id), so structural fallbacks remain.

   The set itself stays immutable; the mutable fields are caches of
   functions of the set, so labels are still values. Nothing in the
   repo compares labels with polymorphic equality (the convention is
   [Label.equal] / [Flow.equal_labels] or pattern matching), which is
   what makes the cached-id representation safe. *)
type t = { set : S.t; mutable id : int; mutable card : int }

let wrap set = { set; id = 0; card = -1 }

(* ---- interning pool ---- *)

module Pool = Hashtbl.Make (struct
  type t = S.t

  let equal = S.equal
  let hash s = S.fold (fun tag acc -> (acc * 31) + Tag.id tag) s 17
end)

let pool : t Pool.t = Pool.create 1024
let pool_cap = 8192
let next_id = ref 0
let intern_counters : Memo.counters = { hits = 0; misses = 0; flushes = 0 }

let () =
  Memo.register ~name:"intern" ~counters:intern_counters ~capacity:pool_cap
    ~size:(fun () -> Pool.length pool)
    ~reset:(fun () -> Pool.reset pool)

let intern lbl =
  if lbl.id > 0 then lbl
  else
    match Pool.find_opt pool lbl.set with
    | Some canonical ->
        intern_counters.hits <- intern_counters.hits + 1;
        lbl.id <- canonical.id;
        lbl.card <- canonical.card;
        canonical
    | None ->
        intern_counters.misses <- intern_counters.misses + 1;
        if Pool.length pool >= pool_cap then begin
          Pool.reset pool;
          intern_counters.flushes <- intern_counters.flushes + 1
        end;
        incr next_id;
        lbl.id <- !next_id;
        Pool.add pool lbl.set lbl;
        lbl

let interned_id lbl =
  if lbl.id > 0 then lbl.id
  else begin
    ignore (intern lbl);
    lbl.id
  end

(* ---- constructors / structure ---- *)

let empty = wrap S.empty
let () = ignore (intern empty)
let is_empty l = S.is_empty l.set
let singleton t = wrap (S.singleton t)
let of_list ts = wrap (S.of_list ts)
let to_list l = S.elements l.set
let add t l = wrap (S.add t l.set)
let remove t l = wrap (S.remove t l.set)
let mem t l = S.mem t l.set
let inter a b = wrap (S.inter a.set b.set)
let diff a b = wrap (S.diff a.set b.set)

let equal a b =
  a == b || (a.id > 0 && a.id = b.id) || S.equal a.set b.set

let compare a b =
  if a == b || (a.id > 0 && a.id = b.id) then 0 else S.compare a.set b.set

let cardinal l =
  if l.card >= 0 then l.card
  else begin
    let c = S.cardinal l.set in
    l.card <- c;
    c
  end

let fold f l acc = S.fold f l.set acc
let iter f l = S.iter f l.set
let exists p l = S.exists p l.set
let for_all p l = S.for_all p l.set
let filter p l = wrap (S.filter p l.set)
let choose_opt l = S.choose_opt l.set

(* ---- memoized judgments ---- *)

(* Below this combined size the direct set operation beats a cache
   probe, so tiny labels (the overwhelmingly common case on the
   syscall path) skip memoization entirely. *)
let small_bound = 6

let subset_ref a b = S.subset a.set b.set
let union_ref a b = wrap (S.union a.set b.set)
let subset_cache : bool Memo.pair_cache =
  Memo.create_pair ~name:"subset" ~capacity:4096

let union_cache : t Memo.pair_cache =
  Memo.create_pair ~name:"union" ~capacity:4096

let subset a b =
  a == b
  || S.is_empty a.set
  || (a.id > 0 && a.id = b.id)
  ||
  if cardinal a + cardinal b <= small_bound then S.subset a.set b.set
  else
    let ka = interned_id a and kb = interned_id b in
    if ka = kb then true
    else
      match Memo.find_pair subset_cache ka kb with
      | Some r -> r
      | None ->
          let r = S.subset a.set b.set in
          Memo.add_pair subset_cache ka kb r;
          r

let union a b =
  if a == b then a
  else if S.is_empty a.set then b
  else if S.is_empty b.set then a
  else if cardinal a + cardinal b <= small_bound then
    wrap (S.union a.set b.set)
  else
    let ka = interned_id a and kb = interned_id b in
    if ka = kb then a
    else
      (* union is commutative: normalize the key so (a,b) and (b,a)
         share an entry — and an interned result, which downstream
         judgments then hit by id. *)
      let ka, kb = if ka <= kb then (ka, kb) else (kb, ka) in
      match Memo.find_pair union_cache ka kb with
      | Some r -> r
      | None ->
          let r = intern (wrap (S.union a.set b.set)) in
          Memo.add_pair union_cache ka kb r;
          r

let pp fmt l =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Tag.pp)
    (S.elements l.set)

let to_string l = Format.asprintf "%a" pp l
