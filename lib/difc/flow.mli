(** Flow judgments and the safe-label-change rule.

    These are the two checks the whole platform rests on:

    - {b flow}: data labeled [(S_src, I_src)] may move to a sink
      labeled [(S_dst, I_dst)] iff [S_src ⊆ S_dst] and
      [I_dst ⊆ I_src]. Secrecy only accumulates; integrity only
      erodes.
    - {b safe label change}: a process owning capability set [O] may
      replace its label [L] with [L'] iff every added tag has [t+] in
      [O] and every dropped tag has [t-] in [O].

    Every denial carries a structured explanation so the audit log
    (§3.5 "Debugging") can report failures without exposing data. *)

(** The pair of labels carried by every process, file, message and
    HTTP response in the system. *)
type labels = {
  secrecy : Label.t;
  integrity : Label.t;
}

val bottom : labels
(** [{ secrecy = {}; integrity = {} }]: public, unvouched data. *)

val make : ?secrecy:Label.t -> ?integrity:Label.t -> unit -> labels
val equal_labels : labels -> labels -> bool
val pp_labels : Format.formatter -> labels -> unit

val intern : labels -> labels
(** Canonical representative for this (secrecy, integrity) content:
    both component labels interned, one record per content pair (see
    {!Label.intern}). *)

val labels_id : labels -> int
(** Compact content id for the pair — monotone, never reused, equal
    ids imply {!equal_labels}. Interns as a side effect. *)

val join : labels -> labels -> labels
(** Label of data derived from two sources: secrecy unions, integrity
    intersects. Memoized on interned ids for non-tiny pairs; the
    memoized result is interned. *)

val join_ref : labels -> labels -> labels
(** Unmemoized reference implementation of {!join}, for tests. *)

(** Why a flow or label change was refused. *)
type denial =
  | Secrecy_violation of Label.t
      (** Tags present at the source but missing at the sink. *)
  | Integrity_violation of Label.t
      (** Tags required by the sink but not vouched by the source. *)
  | Unauthorized_add of Label.t
      (** Label change adds tags without [t+]. *)
  | Unauthorized_drop of Label.t
      (** Label change drops tags without [t-]. *)

val pp_denial : Format.formatter -> denial -> unit
val denial_to_string : denial -> string

val can_flow : labels -> labels -> bool
(** [can_flow src dst] is the boolean flow judgment. Memoized on
    interned ids for non-tiny pairs. *)

val can_flow_ref : labels -> labels -> bool
(** Unmemoized reference implementation of {!can_flow}, for tests. *)

val check_flow : labels -> labels -> (unit, denial) result
(** Like {!can_flow} but explains the first violated condition. The
    allowed case shares {!can_flow}'s memo; only denials compute the
    explanatory diffs. *)

val can_flow_with :
  ?src_caps:Capability.Set.t -> ?dst_caps:Capability.Set.t ->
  labels -> labels -> bool
(** Flow judgment modulo capabilities, as at a Flume endpoint: tags
    the source can drop ([t-]) are ignored on the secrecy side, tags
    the destination can add ([t+]) are ignored as well, and dually for
    integrity. This is what lets a declassifier receive data it will
    re-export. *)

val check_label_change :
  caps:Capability.Set.t -> old_label:Label.t -> new_label:Label.t ->
  (unit, denial) result
(** The Flume safe-label-change rule for a single lattice. *)

val check_labels_change :
  caps:Capability.Set.t -> old_labels:labels -> new_labels:labels ->
  (unit, denial) result
(** Safe change applied to both lattices of a {!labels} pair. *)

val raise_secrecy : Label.t -> labels -> labels
(** [raise_secrecy taint l] joins [taint] into the secrecy label:
    the implicit taint a reader acquires. Always safe (secrecy grows). *)

val export_blockers :
  caps:Capability.Set.t -> labels -> Label.t
(** Tags in the secrecy label that the holder of [caps] cannot
    declassify away: the residual label that keeps data inside the
    perimeter. Empty means the data may be exported. *)

(** {1 Label updates and commutativity} *)

(** The three shapes of label mutation the platform performs. [Merge]
    and [Retract] are the semilattice directions; [Assign] replaces
    wholesale. The syscall footprint table (lib/os) classifies every
    label write as one of these, and the interference analysis calls a
    conflicting write pair benign exactly when the updates commute. *)
type update =
  | Merge of labels
  | Assign of labels
  | Retract of Label.t

val apply_update : labels -> update -> labels

val updates_commute : update -> update -> bool
(** Syntactic commutativity judgment: [true] guarantees
    [apply_update (apply_update l a) b = apply_update (apply_update l b) a]
    for every [l] (the QCheck law in the test suite pins this against
    the semantics). Merge/Merge and Retract/Retract always commute;
    Merge/Retract commute iff their tag sets are disjoint; Assign
    commutes only with an identical Assign. *)
