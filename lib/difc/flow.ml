type labels = {
  secrecy : Label.t;
  integrity : Label.t;
}

let bottom = { secrecy = Label.empty; integrity = Label.empty }

let make ?(secrecy = Label.empty) ?(integrity = Label.empty) () =
  { secrecy; integrity }

let equal_labels a b =
  Label.equal a.secrecy b.secrecy && Label.equal a.integrity b.integrity

let pp_labels fmt l =
  Format.fprintf fmt "S=%a I=%a" Label.pp l.secrecy Label.pp l.integrity

(* ---- pair interning ----

   A labels pair is hash-consed by the content ids of its two
   components: one canonical record per (secrecy, integrity) content,
   plus a pair id usable as a compact cache key. Like Label ids, pair
   ids are monotone and never reused. *)

let pair_pool : (labels * int) Memo.pair_cache =
  Memo.create_pair ~name:"flow-pair" ~capacity:8192

let next_pair_id = ref 0

let intern l =
  let ks = Label.interned_id l.secrecy
  and ki = Label.interned_id l.integrity in
  match Memo.find_pair pair_pool ks ki with
  | Some (canonical, _) -> canonical
  | None ->
      incr next_pair_id;
      let canonical =
        { secrecy = Label.intern l.secrecy; integrity = Label.intern l.integrity }
      in
      Memo.add_pair pair_pool ks ki (canonical, !next_pair_id);
      canonical

let labels_id l =
  let ks = Label.interned_id l.secrecy
  and ki = Label.interned_id l.integrity in
  match Memo.find_pair pair_pool ks ki with
  | Some (_, id) -> id
  | None ->
      incr next_pair_id;
      let canonical =
        { secrecy = Label.intern l.secrecy; integrity = Label.intern l.integrity }
      in
      Memo.add_pair pair_pool ks ki (canonical, !next_pair_id);
      !next_pair_id

let join_ref a b =
  {
    secrecy = Label.union_ref a.secrecy b.secrecy;
    integrity = Label.inter a.integrity b.integrity;
  }

(* Combined size under which a direct join beats a cache probe;
   mirrors the small-operand bypass inside Label. *)
let small_bound = 6

let size l = Label.cardinal l.secrecy + Label.cardinal l.integrity

let join_cache : labels Memo.quad_cache =
  Memo.create_quad ~name:"join" ~capacity:4096

let join a b =
  if a == b then a
  else if size a + size b <= small_bound then
    {
      secrecy = Label.union a.secrecy b.secrecy;
      integrity = Label.inter a.integrity b.integrity;
    }
  else
    let ka_s = Label.interned_id a.secrecy
    and ka_i = Label.interned_id a.integrity
    and kb_s = Label.interned_id b.secrecy
    and kb_i = Label.interned_id b.integrity in
    (* join is commutative: normalize on the (secrecy, integrity) id
       pair so both argument orders share one entry. *)
    let ka_s, ka_i, kb_s, kb_i =
      if ka_s < kb_s || (ka_s = kb_s && ka_i <= kb_i) then
        (ka_s, ka_i, kb_s, kb_i)
      else (kb_s, kb_i, ka_s, ka_i)
    in
    match Memo.find_quad join_cache ka_s ka_i kb_s kb_i with
    | Some r -> r
    | None ->
        let r =
          intern
            {
              secrecy = Label.union a.secrecy b.secrecy;
              integrity = Label.inter a.integrity b.integrity;
            }
        in
        Memo.add_quad join_cache ka_s ka_i kb_s kb_i r;
        r

type denial =
  | Secrecy_violation of Label.t
  | Integrity_violation of Label.t
  | Unauthorized_add of Label.t
  | Unauthorized_drop of Label.t

let pp_denial fmt = function
  | Secrecy_violation l ->
      Format.fprintf fmt "secrecy violation: tags %a would leak" Label.pp l
  | Integrity_violation l ->
      Format.fprintf fmt "integrity violation: tags %a not vouched" Label.pp l
  | Unauthorized_add l ->
      Format.fprintf fmt "unauthorized label addition of %a" Label.pp l
  | Unauthorized_drop l ->
      Format.fprintf fmt "unauthorized label drop of %a" Label.pp l

let denial_to_string d = Format.asprintf "%a" pp_denial d

let can_flow_ref src dst =
  Label.subset_ref src.secrecy dst.secrecy
  && Label.subset_ref dst.integrity src.integrity

let can_flow_cache : bool Memo.quad_cache =
  Memo.create_quad ~name:"can-flow" ~capacity:4096

let can_flow src dst =
  if src == dst then true
  else if size src + size dst <= small_bound then
    Label.subset src.secrecy dst.secrecy
    && Label.subset dst.integrity src.integrity
  else
    let ks_s = Label.interned_id src.secrecy
    and ks_i = Label.interned_id src.integrity
    and kd_s = Label.interned_id dst.secrecy
    and kd_i = Label.interned_id dst.integrity in
    match Memo.find_quad can_flow_cache ks_s ks_i kd_s kd_i with
    | Some r -> r
    | None ->
        let r =
          Label.subset src.secrecy dst.secrecy
          && Label.subset dst.integrity src.integrity
        in
        Memo.add_quad can_flow_cache ks_s ks_i kd_s kd_i r;
        r

let check_flow src dst =
  (* The allowed case rides the memoized boolean judgment; denials are
     the rare path, and only they pay for the explanatory diffs. *)
  if can_flow src dst then Ok ()
  else
    let secrecy_excess = Label.diff src.secrecy dst.secrecy in
    if not (Label.is_empty secrecy_excess) then
      Error (Secrecy_violation secrecy_excess)
    else
      let integrity_missing = Label.diff dst.integrity src.integrity in
      if not (Label.is_empty integrity_missing) then
        Error (Integrity_violation integrity_missing)
      else Ok ()

let can_flow_with ?(src_caps = Capability.Set.empty)
    ?(dst_caps = Capability.Set.empty) src dst =
  (* A tag blocks the secrecy condition only if the source cannot drop
     it and the destination cannot add it. Dually, an integrity tag
     required by the destination is satisfiable if the destination can
     drop the requirement or the source could endorse for it. *)
  let secrecy_ok =
    Label.for_all
      (fun t ->
        Label.mem t dst.secrecy
        || Capability.Set.can_drop t src_caps
        || Capability.Set.can_add t dst_caps)
      src.secrecy
  in
  let integrity_ok =
    Label.for_all
      (fun t ->
        Label.mem t src.integrity
        || Capability.Set.can_add t src_caps
        || Capability.Set.can_drop t dst_caps)
      dst.integrity
  in
  secrecy_ok && integrity_ok

let check_label_change ~caps ~old_label ~new_label =
  let added = Label.diff new_label old_label in
  let dropped = Label.diff old_label new_label in
  if Capability.Set.is_empty caps then
    (* No capabilities authorize no change: every added or dropped tag
       is a violation, no per-tag probes needed. *)
    if not (Label.is_empty added) then Error (Unauthorized_add added)
    else if not (Label.is_empty dropped) then Error (Unauthorized_drop dropped)
    else Ok ()
  else
    let bad_adds =
      Label.filter (fun t -> not (Capability.Set.can_add t caps)) added
    in
    if not (Label.is_empty bad_adds) then Error (Unauthorized_add bad_adds)
    else
      let bad_drops =
        Label.filter (fun t -> not (Capability.Set.can_drop t caps)) dropped
      in
      if not (Label.is_empty bad_drops) then Error (Unauthorized_drop bad_drops)
      else Ok ()

let check_labels_change ~caps ~old_labels ~new_labels =
  match
    check_label_change ~caps ~old_label:old_labels.secrecy
      ~new_label:new_labels.secrecy
  with
  | Error _ as e -> e
  | Ok () ->
      check_label_change ~caps ~old_label:old_labels.integrity
        ~new_label:new_labels.integrity

let raise_secrecy taint l = { l with secrecy = Label.union taint l.secrecy }

let export_blockers ~caps l =
  if Capability.Set.is_empty caps then l.secrecy
  else Label.filter (fun t -> not (Capability.Set.can_drop t caps)) l.secrecy

(* {1 Label updates and commutativity}

   A first-class description of the ways the platform mutates a label:
   join more tags in, remove a tag, or replace wholesale. The
   interference analysis ranks a conflicting write pair as benign
   exactly when the two updates commute — which for [Merge]/[Retract]
   follows from the join-semilattice laws (union is ACI; removal of
   distinct elements distributes), and a QCheck law in the test suite
   validates the syntactic judgment below against actually applying
   the updates in both orders. *)

type update =
  | Merge of labels  (** join into the current value (union/union) *)
  | Assign of labels  (** replace wholesale *)
  | Retract of Label.t  (** remove these tags from both lattices *)

let apply_update l = function
  | Merge m -> join l m
  | Assign a -> a
  | Retract tags ->
      make
        ~secrecy:(Label.diff l.secrecy tags)
        ~integrity:(Label.diff l.integrity tags)
        ()

let updates_commute a b =
  match (a, b) with
  (* union is associative-commutative-idempotent *)
  | Merge _, Merge _ -> true
  (* removals of (possibly overlapping) tag sets commute *)
  | Retract _, Retract _ -> true
  (* merge and retract commute iff they touch disjoint tags: retract
     after merge would otherwise strip what the merge added *)
  | Merge m, Retract tags | Retract tags, Merge m ->
      Label.is_empty (Label.inter m.secrecy tags)
      && Label.is_empty (Label.inter m.integrity tags)
  (* assignment wins by being last: two assigns commute only when
     they agree, and assign never commutes with anything else that
     touches the value *)
  | Assign x, Assign y -> equal_labels x y
  | Assign _, (Merge _ | Retract _) | (Merge _ | Retract _), Assign _ -> false
