(** Bounded memo caches for the label algebra.

    Each cache is size-capped: when an insert would exceed the cap the
    whole table is flushed (one counter bump, no LRU bookkeeping on
    the hot path). Keys are interned-content ids ({!Label.intern}),
    which are assigned from a monotone counter and never reused — so a
    cached judgment can never go stale; a flush costs warmth, never
    soundness.

    Hit/miss/flush counters live in a process-global registry that
    {!snapshots} exposes; the kernel republishes them as
    [w5_label_cache_*] metrics. Counters and cache keys carry only
    opaque integer ids and cache names — never tag names or user
    bytes. *)

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

type snapshot = {
  name : string;
  hits : int;
  misses : int;
  flushes : int;
  size : int;
  capacity : int;
}

val snapshots : unit -> snapshot list
(** One snapshot per registered cache, in registration order. *)

val reset_all : unit -> unit
(** Flush every registered cache and zero its counters. Test hook;
    also safe anytime (caches only memoize pure judgments). *)

val register :
  name:string ->
  counters:counters ->
  capacity:int ->
  size:(unit -> int) ->
  reset:(unit -> unit) ->
  unit
(** Expose an externally managed cache (e.g. the label intern pool)
    through the same registry. *)

type 'v pair_cache
(** A cache keyed by an ordered pair of interned ids. *)

val create_pair : name:string -> capacity:int -> 'v pair_cache
val find_pair : 'v pair_cache -> int -> int -> 'v option
val add_pair : 'v pair_cache -> int -> int -> 'v -> unit

type 'v quad_cache
(** A cache keyed by four interned ids (a pair of label pairs). *)

val create_quad : name:string -> capacity:int -> 'v quad_cache
val find_quad : 'v quad_cache -> int -> int -> int -> int -> 'v option
val add_quad : 'v quad_cache -> int -> int -> int -> int -> 'v -> unit
