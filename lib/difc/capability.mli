(** Capabilities and ownership sets.

    Following Flume, each tag [t] has two associated capabilities:
    [t+] (the right to *add* [t] to one's own label, i.e. to receive
    data tainted by [t] / to endorse for integrity [t]) and [t-] (the
    right to *remove* [t], i.e. to declassify secrecy [t] / to drop an
    integrity vouching). A process's ownership set [O] is a set of
    such capabilities. Holding both [t+] and [t-] is called *dual
    privilege* over [t] and makes the tag invisible to that process's
    flow checks. *)

(** Polarity of a capability. *)
type sign =
  | Plus   (** [t+]: may add the tag to own label. *)
  | Minus  (** [t-]: may remove the tag from own label. *)

type t
(** A single capability: a tag together with a polarity. *)

val make : Tag.t -> sign -> t
val tag : t -> Tag.t
val sign : t -> sign
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Ownership sets. *)
module Set : sig
  type cap := t
  type t

  val empty : t

  val is_empty : t -> bool
  (** An empty ownership set authorizes no label change at all; flow
      checks use this to skip per-tag capability probes for ordinary
      processes. *)

  val of_list : cap list -> t
  val to_list : t -> cap list
  val add : cap -> t -> t
  val remove : cap -> t -> t
  val mem : cap -> t -> bool
  val union : t -> t -> t
  val subset : t -> t -> bool
  val cardinal : t -> int
  val equal : t -> t -> bool

  val grant_dual : Tag.t -> t -> t
  (** [grant_dual tag o] adds both [tag+] and [tag-]. *)

  val can_add : Tag.t -> t -> bool
  (** Does the set contain [tag+]? *)

  val can_drop : Tag.t -> t -> bool
  (** Does the set contain [tag-]? *)

  val has_dual : Tag.t -> t -> bool

  val addable : t -> Label.t
  (** All tags [t] with [t+] present — the upper bound of reachable
      label growth. *)

  val droppable : t -> Label.t
  (** All tags [t] with [t-] present — the tags the owner can
      declassify away. *)

  val pp : Format.formatter -> t -> unit
end
