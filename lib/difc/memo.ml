(* Bounded memo caches for the label algebra, with a global stats
   registry so the kernel can republish hit/miss counters as
   w5_label_cache_* metrics without lib/difc depending on lib/obs.

   Keys are interned-content ids (see Label.intern): ids are assigned
   from a monotone counter and never reused, so an entry can never go
   stale — flushing a full cache loses warmth, never soundness. *)

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

type snapshot = {
  name : string;
  hits : int;
  misses : int;
  flushes : int;
  size : int;
  capacity : int;
}

type entry = {
  e_name : string;
  e_counters : counters;
  e_capacity : int;
  e_size : unit -> int;
  e_reset : unit -> unit;
}

let registry : entry list ref = ref []

let register ~name ~counters ~capacity ~size ~reset =
  registry :=
    {
      e_name = name;
      e_counters = counters;
      e_capacity = capacity;
      e_size = size;
      e_reset = reset;
    }
    :: !registry

let snapshots () =
  List.rev_map
    (fun e ->
      {
        name = e.e_name;
        hits = e.e_counters.hits;
        misses = e.e_counters.misses;
        flushes = e.e_counters.flushes;
        size = e.e_size ();
        capacity = e.e_capacity;
      })
    !registry

let reset_all () =
  List.iter
    (fun e ->
      e.e_reset ();
      e.e_counters.hits <- 0;
      e.e_counters.misses <- 0;
      e.e_counters.flushes <- 0)
    !registry

module Pair_key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor b
end

module Quad_key = struct
  type t = int * int * int * int

  let equal (a1, b1, c1, d1) (a2, b2, c2, d2) =
    a1 = a2 && b1 = b2 && c1 = c2 && d1 = d2

  let hash (a, b, c, d) =
    ((((a * 0x9e3779b1) lxor b) * 0x85ebca77) lxor c) * 0xc2b2ae3d lxor d
end

module PT = Hashtbl.Make (Pair_key)
module QT = Hashtbl.Make (Quad_key)

type 'v pair_cache = { p_counters : counters; p_table : 'v PT.t; p_cap : int }
type 'v quad_cache = { q_counters : counters; q_table : 'v QT.t; q_cap : int }

let fresh_counters () = { hits = 0; misses = 0; flushes = 0 }

let create_pair ~name ~capacity =
  let c =
    {
      p_counters = fresh_counters ();
      p_table = PT.create 256;
      p_cap = max 1 capacity;
    }
  in
  register ~name ~counters:c.p_counters ~capacity:c.p_cap
    ~size:(fun () -> PT.length c.p_table)
    ~reset:(fun () -> PT.reset c.p_table);
  c

let create_quad ~name ~capacity =
  let c =
    {
      q_counters = fresh_counters ();
      q_table = QT.create 256;
      q_cap = max 1 capacity;
    }
  in
  register ~name ~counters:c.q_counters ~capacity:c.q_cap
    ~size:(fun () -> QT.length c.q_table)
    ~reset:(fun () -> QT.reset c.q_table);
  c

let find_pair c a b =
  match PT.find_opt c.p_table (a, b) with
  | Some _ as r ->
      c.p_counters.hits <- c.p_counters.hits + 1;
      r
  | None ->
      c.p_counters.misses <- c.p_counters.misses + 1;
      None

let add_pair c a b v =
  if PT.length c.p_table >= c.p_cap then begin
    PT.reset c.p_table;
    c.p_counters.flushes <- c.p_counters.flushes + 1
  end;
  PT.replace c.p_table (a, b) v

let find_quad c a b d e =
  match QT.find_opt c.q_table (a, b, d, e) with
  | Some _ as r ->
      c.q_counters.hits <- c.q_counters.hits + 1;
      r
  | None ->
      c.q_counters.misses <- c.q_counters.misses + 1;
      None

let add_quad c a b d e v =
  if QT.length c.q_table >= c.q_cap then begin
    QT.reset c.q_table;
    c.q_counters.flushes <- c.q_counters.flushes + 1
  end;
  QT.replace c.q_table (a, b, d, e) v
