(** Labels: finite sets of {!Tag.t} forming the DIFC lattice.

    A process or object carries two labels, a secrecy label [S] and an
    integrity label [I]. The partial order is set inclusion; join is
    union and meet is intersection. All operations are purely
    functional.

    Labels are hash-consed on demand: {!intern} maps a label to a
    canonical representative with a process-unique content id, and
    {!subset} / {!union} memoize their results keyed on those ids (see
    {!Memo}). Ids are monotone and never reused, so memo entries never
    go stale. Compare labels only with {!equal} / {!compare} — the
    cached id makes polymorphic structural equality unreliable. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Tag.t -> t
val of_list : Tag.t list -> t
val to_list : t -> Tag.t list

val add : Tag.t -> t -> t
val remove : Tag.t -> t -> t
val mem : Tag.t -> t -> bool

val intern : t -> t
(** The canonical representative for this tag-set content. Interned
    equality is physical equality (until a pool flush re-canonicalizes
    the content under a fresh id — never observable except as a cache
    miss). Also caches the content id on the argument itself. *)

val interned_id : t -> int
(** The content id (> 0), interning first if needed. Equal ids imply
    equal labels; distinct ids imply nothing. *)

val union : t -> t -> t
(** Lattice join: the label of data derived from two sources.
    Memoized for non-tiny operands; the memoized result is interned. *)

val union_ref : t -> t -> t
(** Unmemoized reference implementation of {!union}, for tests. *)

val inter : t -> t -> t
(** Lattice meet. *)

val diff : t -> t -> t
(** [diff a b] is the set of tags in [a] but not [b] — the tags that
    make a flow from [a] to [b] unsafe. *)

val subset : t -> t -> bool
(** [subset a b] is the lattice order: data labeled [a] may flow where
    [b] is required. Memoized for non-tiny operands. *)

val subset_ref : t -> t -> bool
(** Unmemoized reference implementation of {!subset}, for tests. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val cardinal : t -> int
val fold : (Tag.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tag.t -> unit) -> t -> unit
val exists : (Tag.t -> bool) -> t -> bool
val for_all : (Tag.t -> bool) -> t -> bool
val filter : (Tag.t -> bool) -> t -> t
val choose_opt : t -> Tag.t option
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Render as ["{a, b, c}"] using tag names, for audit records. *)
