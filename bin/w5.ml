(* The W5 command-line driver: boot a simulated provider, drive
   scripted scenarios, inspect the audit log, rank the module
   ecosystem. Everything is deterministic from --seed.

     dune exec bin/w5.exe -- <command> [options]
*)

open Cmdliner
open W5_http
open W5_platform

(* ---- shared options ---- *)

let seed_arg =
  let doc = "PRNG seed for workload generation (determines everything)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let users_arg =
  let doc = "Number of users in the synthetic society." in
  Arg.(value & opt int 12 & info [ "users" ] ~docv:"N" ~doc)

let build_society ~seed ~users ~enforcing =
  W5_workload.Populate.build ~seed ~enforcing ~users ~friends_per_user:3
    ~photos_per_user:2 ~blog_posts_per_user:1 ()

(* ---- w5 serve: drive a request trace and report ---- *)

let serve seed users requests enforcing =
  Printf.printf "booting provider (seed=%d, users=%d, enforcing=%b)...\n%!" seed
    users enforcing;
  let society = build_society ~seed ~users ~enforcing in
  let platform = society.W5_workload.Populate.platform in
  let rng = W5_workload.Rng.create ~seed:(seed + 1) in
  let everyone = society.W5_workload.Populate.users in
  let clients =
    List.map (fun u -> (u, W5_workload.Populate.login society u)) everyone
  in
  let pick_client () = W5_workload.Rng.pick rng clients in
  let outcomes = Hashtbl.create 8 in
  let count status =
    Hashtbl.replace outcomes status
      (1 + Option.value (Hashtbl.find_opt outcomes status) ~default:0)
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to requests do
    let user, client = pick_client () in
    let target = W5_workload.Rng.pick rng everyone in
    let r =
      match W5_workload.Rng.int rng 4 with
      | 0 ->
          Client.get client "/app/core/social" ~params:[ ("user", target) ]
      | 1 ->
          Client.get client "/app/core/photos"
            ~params:[ ("action", "list"); ("user", target) ]
      | 2 ->
          Client.get client "/app/core/blog"
            ~params:[ ("action", "read"); ("user", target) ]
      | _ ->
          Client.get client "/app/core/social" ~params:[ ("user", user) ]
    in
    count (Response.status_code r.Response.status)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "\n%d requests in %.3fs (%.0f req/s)\n" requests dt
    (float_of_int requests /. dt);
  Printf.printf "status breakdown:\n";
  Hashtbl.fold (fun status n acc -> (status, n) :: acc) outcomes []
  |> List.sort compare
  |> List.iter (fun (status, n) -> Printf.printf "  %d -> %d\n" status n);
  Printf.printf "audit log entries: %d (%d denials)\n"
    (W5_os.Audit.length (W5_os.Kernel.audit (Platform.kernel platform)))
    (List.length (W5_os.Audit.denials (W5_os.Kernel.audit (Platform.kernel platform))));
  Printf.printf "kernel processes spawned: %d\n"
    (List.length (W5_os.Kernel.processes (Platform.kernel platform)));
  `Ok ()

let serve_cmd =
  let requests =
    Arg.(value & opt int 500 & info [ "requests"; "n" ] ~docv:"N"
           ~doc:"Number of requests to simulate.")
  in
  let enforcing =
    Arg.(value & opt bool true & info [ "enforcing" ] ~docv:"BOOL"
           ~doc:"Enable IFC enforcement (false = P1 baseline arm).")
  in
  let term = Term.(ret (const serve $ seed_arg $ users_arg $ requests $ enforcing)) in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Boot a provider, replay a random request trace, report outcomes.")
    term

(* ---- w5 audit: run a breach attempt, show the data-free trail ---- *)

let audit seed users =
  let society = build_society ~seed ~users ~enforcing:true in
  let platform = society.W5_workload.Populate.platform in
  let mal = W5_difc.Principal.make W5_difc.Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  let victim = List.hd society.W5_workload.Populate.users in
  let attacker = Client.make ~name:"attacker" (Gateway.handler platform) in
  Printf.printf "attacker runs mal/thief and mal/vandal against %s...\n" victim;
  let r = Client.get attacker "/app/mal/thief" ~params:[ ("target", victim) ] in
  Printf.printf "  thief:  HTTP %d\n" (Response.status_code r.Response.status);
  let r = Client.get attacker "/app/mal/vandal" ~params:[ ("target", victim) ] in
  Printf.printf "  vandal: HTTP %d\n" (Response.status_code r.Response.status);
  Printf.printf "\naudit log (denials only, no user data):\n";
  List.iter
    (fun e -> Format.printf "  %a@." W5_os.Audit.pp_entry e)
    (W5_os.Audit.denials (W5_os.Kernel.audit (Platform.kernel platform)));
  `Ok ()

let audit_cmd =
  let term = Term.(ret (const audit $ seed_arg $ users_arg)) in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run attack apps against a user and print the denial trail.")
    term

(* ---- w5 explain / provenance / audit-report: the flight recorder ---- *)

(* The scripted breach scenario the explanation tools run over: a
   malicious app taint-reads the victim's profile and the perimeter
   denies its export to the attacker; then a legitimate friend views
   the same profile, exercising the friends-only declassifier. Every
   path — denial, declassification, allow — is in the log. *)
let breach_scenario ~seed ~users =
  let society = build_society ~seed ~users ~enforcing:true in
  let platform = society.W5_workload.Populate.platform in
  let mal = W5_difc.Principal.make W5_difc.Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  let victim = List.hd society.W5_workload.Populate.users in
  let attacker = Client.make ~name:"attacker" (Gateway.handler platform) in
  ignore (Client.get attacker "/app/mal/thief" ~params:[ ("target", victim) ]);
  let friends_of user =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"friends" with
    | Ok r -> W5_store.Record.get_list r "friends"
    | Error _ -> []
  in
  (match friends_of victim with
  | friend :: _ when List.mem friend society.W5_workload.Populate.users ->
      let client = W5_workload.Populate.login society friend in
      ignore (Client.get client "/app/core/social" ~params:[ ("user", victim) ])
  | _ -> ());
  (platform, victim)

let explain_denial seed users seq pid dot =
  let platform, _victim = breach_scenario ~seed ~users in
  let log = W5_os.Kernel.audit (Platform.kernel platform) in
  match W5_os.Explain.find_denial log ?seq ?pid () with
  | None -> `Error (false, "no matching denial in the audit log")
  | Some entry -> (
      let g = W5_os.Explain.graph log in
      Format.printf "denial: %a@.@." W5_os.Audit.pp_entry entry;
      match
        if dot then W5_os.Explain.explain_dot g entry
        else W5_os.Explain.explain_text g entry
      with
      | Error msg -> `Error (false, msg)
      | Ok rendered ->
          print_string rendered;
          print_newline ();
          `Ok ())

let explain_cmd =
  let seq =
    Arg.(value & opt (some int) None & info [ "seq" ] ~docv:"SEQ"
           ~doc:"Audit sequence number of the denial to explain.")
  in
  let pid =
    Arg.(value & opt (some int) None & info [ "pid" ] ~docv:"PID"
           ~doc:"Explain the most recent denial by this process.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ]
           ~doc:"Emit the causal chain as Graphviz DOT instead of text.")
  in
  let term =
    Term.(ret (const explain_denial $ seed_arg $ users_arg $ seq $ pid $ dot))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain a denial: the causal chain of audited events that put \
             the offending tags on the denied process.")
    term

let provenance seed users path pid =
  let platform, victim = breach_scenario ~seed ~users in
  let log = W5_os.Kernel.audit (Platform.kernel platform) in
  let g = W5_os.Explain.graph log in
  let print_histories target histories =
    if histories = [] then
      Printf.printf "%s carries no secrecy tags (per the retained log)\n"
        target
    else
      List.iter
        (fun (tag, edges) ->
          Printf.printf "%s: tag %s arrived via\n" target tag;
          List.iter
            (fun e ->
              print_string "  ";
              print_string (W5_obs.Provenance.render_edge g e);
              print_newline ())
            edges)
        histories
  in
  (match (path, pid) with
  | None, Some p ->
      print_histories
        (Printf.sprintf "pid %d" p)
        (W5_os.Explain.process_provenance g log ~pid:p)
  | Some path, _ -> print_histories path (W5_os.Explain.file_provenance g ~path)
  | None, None ->
      let path = Platform.user_file victim "profile" in
      print_histories path (W5_os.Explain.file_provenance g ~path));
  `Ok ()

let provenance_cmd =
  let path =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"PATH"
           ~doc:"File to trace (defaults to the scenario victim's profile).")
  in
  let pid =
    Arg.(value & opt (some int) None & info [ "pid" ] ~docv:"PID"
           ~doc:"Trace a process's current tags instead of a file's.")
  in
  let term =
    Term.(ret (const provenance $ seed_arg $ users_arg $ path $ pid))
  in
  Cmd.v
    (Cmd.info "provenance"
       ~doc:"Per-tag history: which audited events put each secrecy tag on \
             a file or process.")
    term

let audit_report seed users =
  let platform, _ = breach_scenario ~seed ~users in
  print_string (W5_os.Explain.report (W5_os.Kernel.audit (Platform.kernel platform)));
  `Ok ()

let audit_report_cmd =
  let term = Term.(ret (const audit_report $ seed_arg $ users_arg)) in
  Cmd.v
    (Cmd.info "audit-report"
       ~doc:"Provider-side rollup of the audit log: declassifications by \
             gate, denials by reason/op/app, exports, tainted paths.")
    term

(* ---- w5 rank: the code-search view of a module ecosystem ---- *)

let rank seed modules top =
  let platform = Platform.create () in
  ignore
    (W5_workload.Populate.fill_dependency_graph ~seed platform ~modules
       ~imports_per_module:3);
  let registry = Platform.registry platform in
  let graph = W5_rank.Code_search.graph_of_registry registry in
  Printf.printf "modules=%d edges=%d pagerank-iterations=%d\n"
    (W5_rank.Depgraph.node_count graph)
    (W5_rank.Depgraph.edge_count graph)
    (W5_rank.Pagerank.iterations_to_converge graph);
  let results = W5_rank.Code_search.score_all registry in
  Printf.printf "top %d modules:\n" top;
  List.iteri
    (fun i r ->
      if i < top then
        Printf.printf "  %2d. %-16s score=%.4f pagerank=%.4f\n" (i + 1)
          r.W5_rank.Code_search.app_id r.W5_rank.Code_search.total
          r.W5_rank.Code_search.pagerank)
    results;
  `Ok ()

let rank_cmd =
  let modules =
    Arg.(value & opt int 50 & info [ "modules" ] ~docv:"N"
           ~doc:"Size of the synthetic module ecosystem.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"How many to print.")
  in
  let term = Term.(ret (const rank $ seed_arg $ modules $ top)) in
  Cmd.v
    (Cmd.info "rank" ~doc:"Rank a synthetic module ecosystem (code search, E5).")
    term

(* ---- w5 sync: two providers converging ---- *)

let sync_demo rounds fault_seed =
  let module Sync = W5_federation.Sync in
  let module Fault = W5_fault.Fault in
  let a = { Sync.platform = Platform.create (); provider_name = "east" } in
  let b = { Sync.platform = Platform.create (); provider_name = "west" } in
  let ok_s = function Ok v -> v | Error e -> failwith e in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  let faults = Option.map (fun seed -> Fault.of_seed ~seed ()) fault_seed in
  (match faults with
  | Some plan -> Printf.printf "fault plan: %s\n" (Fault.describe plan)
  | None -> ());
  let link =
    ok_s (Sync.establish ?faults ~a ~b ~user:"zoe" ~files:[ "profile"; "friends" ] ())
  in
  for round = 1 to rounds do
    let side, name = if round mod 2 = 0 then (a, "east") else (b, "west") in
    let account = Platform.account_exn side.Sync.platform "zoe" in
    ignore
      (Platform.write_user_record side.Sync.platform account
         ~file:"profile"
         (W5_store.Record.of_fields
            [ ("user", "zoe"); ("edited-on", name); ("round", string_of_int round) ]));
    match Sync.sync link with
    | Ok stats ->
        Printf.printf
          "round %2d: edit on %-4s | a->b %d, b->a %d, merged %d, retried %d, \
           timed-out %d, recovered %d, converged %b\n"
          round name stats.Sync.a_to_b stats.Sync.b_to_a stats.Sync.merged
          stats.Sync.retried stats.Sync.timed_out stats.Sync.recovered
          (Sync.converged link)
    | Error e ->
        (* a simulated provider death: the next round is the restart
           and begins with write-ahead intent recovery *)
        Printf.printf "round %2d: edit on %-4s | provider crashed (%s)\n" round
          name e
  done;
  (* drain the remaining schedule so the demo always ends converged *)
  let rec settle n =
    if n > 0 && not (Sync.converged link) then begin
      (match Sync.sync link with
      | Ok stats ->
          if stats.Sync.recovered > 0 then
            Printf.printf "recovery: replayed %d write-ahead intent(s)\n"
              stats.Sync.recovered
      | Error e -> Printf.printf "recovery round: crashed again (%s)\n" e);
      settle (n - 1)
    end
  in
  settle 10;
  (match faults with
  | Some plan ->
      let rendered = Fault.render_fired plan in
      if rendered <> "" then print_endline rendered;
      Printf.printf "faults fired: %d, schedule left: %d\n"
        (List.length (Fault.fired plan))
        (Fault.pending plan)
  | None -> ());
  Printf.printf "final: converged %b\n" (Sync.converged link);
  `Ok ()

let sync_cmd =
  let rounds =
    Arg.(value & opt int 6 & info [ "rounds" ] ~docv:"N" ~doc:"Edit/sync rounds.")
  in
  let faults =
    Arg.(value & opt (some int) None
         & info [ "faults" ] ~docv:"SEED"
             ~doc:
               "Inject a deterministic fault schedule (drops, delays, \
                duplicates, crashes) derived from $(docv). The same seed \
                replays the same run byte for byte.")
  in
  let term = Term.(ret (const sync_demo $ rounds $ faults)) in
  Cmd.v
    (Cmd.info "sync" ~doc:"Demonstrate cross-provider mirroring (E6).")
    term

(* ---- w5 trace: replay a generated workload and report; with
   --federated, the cross-provider distributed trace instead ---- *)

(* The scripted 3-provider faulty sync, merged into one causal tree:
   which hop dropped, who retried, where the crash hit and how the
   write-ahead recovery closed it — across all three tracers. *)
let federated_trace format =
  let outcome = W5_federation.Scenario.run () in
  let forest = W5_obs.Trace_merge.merge outcome.W5_federation.Scenario.spans in
  match format with
  | "json" -> print_endline (W5_obs.Trace_merge.to_json forest); `Ok ()
  | "dot" -> print_string (W5_obs.Trace_merge.to_dot forest); `Ok ()
  | "text" ->
      Printf.printf
        "federated trace: %s over %s (scripted faults on east~south)\n"
        W5_federation.Scenario.user
        (String.concat ", " W5_federation.Scenario.providers);
      List.iter print_endline outcome.W5_federation.Scenario.round_notes;
      Printf.printf "merged spans: %d\n\n" (W5_obs.Trace_merge.span_count forest);
      print_string (W5_obs.Trace_merge.to_text forest);
      `Ok ()
  | other -> `Error (true, "unknown format: " ^ other)

let trace seed users length mix_name federated format =
  if federated then federated_trace format
  else begin
  let society = build_society ~seed ~users ~enforcing:true in
  let mix =
    match mix_name with
    | "write-heavy" -> W5_workload.Trace.write_heavy
    | _ -> W5_workload.Trace.read_heavy
  in
  let rng = W5_workload.Rng.create ~seed:(seed + 100) in
  let actions = W5_workload.Trace.generate rng ~society ~mix ~length in
  Printf.printf "replaying %d %s actions over %d users...\n%!" length mix_name
    users;
  let t0 = Unix.gettimeofday () in
  let outcome = W5_workload.Trace.replay society actions in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "done in %.3fs (%.0f actions/s): ok %d, refused %d, throttled %d, failed %d\n"
    dt
    (float_of_int outcome.W5_workload.Trace.total /. dt)
    outcome.W5_workload.Trace.ok outcome.W5_workload.Trace.forbidden
    outcome.W5_workload.Trace.throttled outcome.W5_workload.Trace.failed;
  print_newline ();
  print_string (Admin.render (Admin.collect society.W5_workload.Populate.platform));
  (match Admin.suspicious_apps (Admin.collect society.W5_workload.Populate.platform) with
  | [] -> ()
  | apps ->
      Printf.printf "\nsuspicious apps (>=3 denials): %s\n"
        (String.concat ", " apps));
  `Ok ()
  end

let trace_cmd =
  let length =
    Arg.(value & opt int 400 & info [ "length"; "n" ] ~docv:"N"
           ~doc:"Number of actions in the trace.")
  in
  let mix =
    Arg.(value & opt string "read-heavy" & info [ "mix" ] ~docv:"MIX"
           ~doc:"Action mix: read-heavy or write-heavy.")
  in
  let federated =
    Arg.(value & flag
         & info [ "federated" ]
             ~doc:
               "Instead of a workload replay: run the scripted 3-provider \
                faulty sync and print the merged cross-provider trace \
                (injected faults, retries and the crash recovery as \
                annotated spans). Byte-reproducible.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"With --federated: text (default), json, or dot.")
  in
  let term =
    Term.(ret (const trace $ seed_arg $ users_arg $ length $ mix $ federated
               $ format))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Generate a seeded action trace, replay it, print the provider \
          report; --federated merges the 3-provider faulty-sync trace instead.")
    term

(* ---- w5 health: federation peer health and gateway SLO ---- *)

let health () =
  let outcome = W5_federation.Scenario.run () in
  let h = W5_federation.Peer.health outcome.W5_federation.Scenario.mesh in
  let now = outcome.W5_federation.Scenario.health_now in
  print_string (W5_obs.Health.render h ~now);
  print_newline ();
  let slo = outcome.W5_federation.Scenario.slo in
  let slo_now = outcome.W5_federation.Scenario.slo_now in
  print_string (W5_obs.Health.Slo.render slo ~now:slo_now);
  let peer_sev =
    List.fold_left
      (fun acc r -> max acc (W5_obs.Health.severity r.W5_obs.Health.r_state))
      0
      (W5_obs.Health.report h ~now)
  in
  let sev =
    if W5_obs.Health.Slo.breached slo ~now:slo_now then max peer_sev 2
    else peer_sev
  in
  (* route through the shared severity→exit-code contract so health,
     vet and soak can never disagree on what a status means *)
  exit
    (W5_analysis.Severity.exit_code
       (W5_analysis.Severity.of_health_severity sev))

let health_cmd =
  let term = Term.(const health $ const ()) in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Federation health over the scripted 3-provider scenario: per-peer \
          sync health (last-success age, fault/retry rates, vector-clock \
          lag, hysteresis) plus east's per-route gateway SLO / error budget. \
          Exit status is the worst judgment (0 healthy, 2 degraded or SLO \
          breach, 3 unreachable).")
    term

(* ---- w5 export: a user's portable data bundle ---- *)

let export_user seed users who =
  let society = build_society ~seed ~users ~enforcing:true in
  let platform = society.W5_workload.Populate.platform in
  let user =
    match who with
    | Some user -> user
    | None -> List.hd society.W5_workload.Populate.users
  in
  match Platform.find_account platform user with
  | None -> `Error (false, "no such user: " ^ user)
  | Some account -> (
      match W5_federation.Migrate.export_bundle platform account with
      | Error e -> `Error (false, W5_os.Os_error.to_string e)
      | Ok bundle ->
          Printf.printf "# portable bundle for %s (%d entries)\n" user
            (List.length bundle);
          print_string (W5_federation.Migrate.encode_bundle bundle);
          print_newline ();
          `Ok ())

let export_cmd =
  let who =
    Arg.(value & opt (some string) None & info [ "user" ] ~docv:"USER"
           ~doc:"Which user to export (defaults to the first).")
  in
  let term = Term.(ret (const export_user $ seed_arg $ users_arg $ who)) in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Print a user's whole-account portable bundle (data takeout).")
    term

(* ---- w5 stats: the label-safe telemetry dump ---- *)

let stats seed users format =
  let society = build_society ~seed ~users ~enforcing:true in
  let platform = society.W5_workload.Populate.platform in
  let kernel = Platform.kernel platform in
  W5_obs.Tracer.set_enabled (W5_os.Kernel.tracer kernel) true;
  let everyone = society.W5_workload.Populate.users in
  (* Deterministic mix: everyone loads their own profile (allows), one
     photo listing for route diversity, and one provably-foreign view
     — a logged-in non-friend hitting someone's profile — so the
     friends-only declassifier refuses and the perimeter records an
     export denial. *)
  List.iter
    (fun user ->
      let client = W5_workload.Populate.login society user in
      ignore (Client.get client "/app/core/social" ~params:[ ("user", user) ]))
    everyone;
  (let u0 = List.hd everyone in
   let c0 = W5_workload.Populate.login society u0 in
   ignore
     (Client.get c0 "/app/core/photos"
        ~params:[ ("action", "list"); ("user", u0) ]));
  let friends_of user =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"friends" with
    | Ok r -> W5_store.Record.get_list r "friends"
    | Error _ -> []
  in
  let stranger_pair =
    List.find_map
      (fun owner ->
        let friends = friends_of owner in
        List.find_map
          (fun viewer ->
            if viewer <> owner && not (List.mem viewer friends) then
              Some (viewer, owner)
            else None)
          everyone)
      everyone
  in
  (match stranger_pair with
  | None -> ()
  | Some (viewer, owner) ->
      let client = W5_workload.Populate.login society viewer in
      ignore (Client.get client "/app/core/social" ~params:[ ("user", owner) ]));
  (* publish the label-algebra memo-cache counters before dumping *)
  W5_os.Kernel.sync_cache_metrics kernel;
  (* static-analysis finding counts, bucketed by severity only — the
     label values are a closed set, so nothing user-derived can ride
     along into the exposition *)
  let st = W5_analysis.Static.capture platform in
  W5_analysis.Vet.export_metrics (W5_os.Kernel.metrics kernel)
    (W5_analysis.Vet.report st);
  W5_analysis.Interfere.export_metrics (W5_os.Kernel.metrics kernel)
    (W5_analysis.Interfere.analyze (W5_analysis.Interfere.model_of_static st));
  let metrics = W5_os.Kernel.metrics kernel in
  (match format with
  | "json" -> print_string (W5_obs.Exposition.json metrics)
  | _ ->
      print_string (W5_obs.Exposition.prometheus metrics);
      (* the JSON exposition embeds p50/p95/p99 per histogram series;
         mirror them here as a separate quantile section *)
      let summaries = W5_obs.Exposition.summaries metrics in
      if summaries <> "" then begin
        print_string "\n# histogram quantiles (logical ticks)\n";
        print_string summaries
      end);
  print_newline ();
  let tracer = W5_os.Kernel.tracer kernel in
  Printf.printf "# traces dropped from the completed ring: %d\n"
    (W5_obs.Tracer.dropped tracer);
  (match W5_obs.Tracer.latest tracer with
  | None -> ()
  | Some span ->
      print_string "# last recorded trace (logical ticks)\n";
      print_string (W5_obs.Exposition.trace_tree span));
  `Ok ()

let stats_cmd =
  let format =
    Arg.(value & opt string "prometheus" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: prometheus (default) or json.")
  in
  let term = Term.(ret (const stats $ seed_arg $ users_arg $ format)) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a deterministic request mix and dump the label-safe \
             telemetry: metrics plus the last request trace.")
    term

(* ---- w5 vet: static label-flow analysis of the whole platform ---- *)

(* The preemption-aware arm of vet: archetype programs over the
   showcase snapshot, the race/TOCTOU analysis, and (with --runtime)
   the differential replay of a freshly-run seeded soak audit log
   against the model's predicted interference surface. *)
let vet_concurrency seed users format toctou runtime_n =
  let society = W5_workload.Populate.build_showcase ~seed ~users () in
  let platform = society.W5_workload.Populate.platform in
  let st = W5_analysis.Static.capture platform in
  let model = W5_analysis.Interfere.model_of_static st in
  let model =
    if toctou then W5_analysis.Interfere.seed_toctou model else model
  in
  let report = W5_analysis.Interfere.analyze model in
  (match format with
  | "json" -> print_string (W5_analysis.Interfere.to_json report)
  | "dot" -> print_string (W5_analysis.Interfere.to_dot report)
  | _ -> print_string (W5_analysis.Interfere.to_text report));
  let replay_sev =
    match runtime_n with
    | None -> None
    | Some requests ->
        (* a real interleaved run, replayed against the model *)
        let cfg =
          {
            W5_workload.Soak.default_config with
            W5_workload.Soak.seed;
            users = max 4 (min users 12);
            requests;
            waves = 2;
          }
        in
        let soc, _summary = W5_workload.Soak.run cfg in
        let log =
          W5_os.Kernel.audit
            (Platform.kernel soc.W5_workload.Populate.platform)
        in
        let replay = W5_analysis.Interfere.fold_audit model log in
        if format <> "json" then begin
          print_newline ();
          print_string (W5_analysis.Interfere.replay_to_text replay)
        end;
        W5_analysis.Interfere.replay_worst replay
  in
  let worst =
    match (W5_analysis.Interfere.worst report, replay_sev) with
    | None, s | s, None -> s
    | Some a, Some b -> Some (W5_analysis.Severity.max_sev a b)
  in
  exit (W5_analysis.Severity.exit_code worst)

let vet seed users format dot runtime_n concurrency toctou =
  if concurrency || toctou then
    vet_concurrency seed users (if dot then "dot" else format) toctou
      runtime_n
  else begin
    let society = W5_workload.Populate.build_showcase ~seed ~users () in
    let platform = society.W5_workload.Populate.platform in
    let st = W5_analysis.Static.capture platform in
    let runtime =
      match runtime_n with
      | None -> None
      | Some length ->
          (* Drive the soak workload *after* the snapshot, then check
             every observed flow edge against the static graph. *)
          let rng = W5_workload.Rng.create ~seed:(seed + 100) in
          let actions =
            W5_workload.Trace.generate rng ~society
              ~mix:W5_workload.Trace.read_heavy ~length
          in
          ignore (W5_workload.Trace.replay society actions);
          Some
            (W5_analysis.Vet.fold_audit st
               (W5_os.Kernel.audit (Platform.kernel platform)))
    in
    let report = W5_analysis.Vet.report ?runtime st in
    (match if dot then "dot" else format with
    | "json" -> print_string (W5_analysis.Vet.to_json report)
    | "dot" -> print_string (W5_analysis.Static.to_dot st)
    | _ -> print_string (W5_analysis.Vet.to_text report));
    exit (W5_analysis.Vet.exit_code report)
  end

let vet_cmd =
  let users =
    Arg.(value & opt int 6 & info [ "users" ] ~docv:"N"
           ~doc:"Number of users in the showcase society.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: text (default), json, or dot.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ]
           ~doc:"Shorthand for --format dot: the static flow graph in Graphviz.")
  in
  let runtime =
    Arg.(value & opt (some int) None & info [ "runtime" ] ~docv:"N"
           ~doc:"Also replay an $(docv)-action workload and check every \
                 audited flow edge against the static graph (the \
                 differential soundness pass). With --concurrency the \
                 replay instead runs an $(docv)-request seeded soak and \
                 checks every observed cross-thread label conflict against \
                 the model's predicted interference surface.")
  in
  let concurrency =
    Arg.(value & flag & info [ "concurrency" ]
           ~doc:"Run the preemption-aware interference analysis instead: \
                 syscall footprints over the scheduler's may-happen-in-\
                 parallel model, reporting stale flow checks (TOCTOU), \
                 atomicity holes, and provably-benign commuting pairs.")
  in
  let toctou =
    Arg.(value & flag & info [ "toctou" ]
           ~doc:"With --concurrency (implied): analyze the deliberately \
                 broken cached-writer model whose fs.write revalidates \
                 nothing. CI pins this to exit status 3.")
  in
  let term =
    Term.(ret (const vet $ seed_arg $ users $ format $ dot $ runtime
               $ concurrency $ toctou))
  in
  Cmd.v
    (Cmd.info "vet"
       ~doc:"Static label-flow analysis of the whole platform: where every \
             tag can go, ranked findings, optional runtime soundness check. \
             --concurrency switches to the preemption-aware interference \
             analysis. Exit status reflects the worst finding (0 clean/info, \
             2 warning, 3 high, 4 critical or unsound).")
    term

(* ---- w5 perf: committed bench baselines and the regression gate ---- *)

let ( let* ) r f =
  match r with Error e -> `Error (false, e) | Ok v -> f v

let perf_dir_arg =
  Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR"
         ~doc:"Directory holding the committed BENCH_*.json baselines \
               (default: the current directory, i.e. the repo root).")

let perf_fresh_arg =
  Arg.(required & opt (some string) None & info [ "fresh" ] ~docv:"DIR"
         ~doc:"Directory holding a fresh run's BENCH_*.json files, as \
               written by bench/main.exe --json-dir $(docv).")

let perf_load_baselines dir =
  match W5_obs.Baseline.load_dir dir with
  | Error e -> Error e
  | Ok [] -> Error ("no BENCH_*.json baselines in " ^ dir)
  | Ok groups -> Ok groups

let perf_report dir =
  let* groups = perf_load_baselines dir in
  List.iter
    (fun (g : W5_obs.Baseline.group) ->
      Printf.printf "[%s]  (regression threshold +%.0f%%)\n"
        g.W5_obs.Baseline.g_name
        (100.0 *. W5_obs.Baseline.group_threshold g.W5_obs.Baseline.g_name);
      List.iter
        (fun (e : W5_obs.Baseline.entry) ->
          Printf.printf "  %-45s %12s/op   runs=%-6d r2=%.4f\n"
            e.W5_obs.Baseline.e_name
            (W5_obs.Baseline.pp_ns e.W5_obs.Baseline.e_ns)
            e.W5_obs.Baseline.e_runs e.W5_obs.Baseline.e_r2)
        g.W5_obs.Baseline.g_entries)
    groups;
  `Ok ()

let perf_report_cmd =
  let term = Term.(ret (const perf_report $ perf_dir_arg)) in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render the committed bench baselines: ns/op per test with \
             run counts, fit quality, and each group's regression \
             threshold.")
    term

let perf_diff dir fresh_dir format names_only =
  let* baseline = perf_load_baselines dir in
  let* fresh = W5_obs.Baseline.load_dir fresh_dir in
  let findings =
    W5_obs.Baseline.compare_runs ~names_only ~baseline ~fresh ()
  in
  (match format with
  | "json" -> print_string (W5_obs.Baseline.render_json findings)
  | _ -> print_string (W5_obs.Baseline.render_text findings));
  if W5_obs.Baseline.has_regression findings then exit 1 else `Ok ()

let perf_diff_cmd =
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: text (default) or json.")
  in
  let names_only =
    Arg.(value & flag & info [ "schema-only" ]
           ~doc:"Compare structure only — groups and test names, no \
                 timing values. This is what CI's smoke-mode gate runs: \
                 smoke timings are meaningless, vanished benches are not.")
  in
  let term =
    Term.(ret (const perf_diff $ perf_dir_arg $ perf_fresh_arg $ format
               $ names_only))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare a fresh bench run against the committed baselines \
             under per-group relative thresholds. Exits 1 on a \
             regression or a vanished group/test; improvements and new \
             entries are informational.")
    term

let perf_record dir fresh_dir =
  let* fresh =
    match W5_obs.Baseline.load_dir fresh_dir with
    | Ok [] -> Error ("no BENCH_*.json files in " ^ fresh_dir)
    | r -> r
  in
  W5_obs.Baseline.save_dir ~dir fresh;
  List.iter
    (fun (g : W5_obs.Baseline.group) ->
      Printf.printf "recorded %s (%d tests)\n"
        (W5_obs.Baseline.filename ~group_name:g.W5_obs.Baseline.g_name)
        (List.length g.W5_obs.Baseline.g_entries))
    fresh;
  `Ok ()

let perf_record_cmd =
  let term = Term.(ret (const perf_record $ perf_dir_arg $ perf_fresh_arg)) in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Promote a fresh run's BENCH_*.json files to committed \
             baselines (re-encodes through the schema, so the files are \
             byte-stable).")
    term

let perf_schema dir =
  let* groups = perf_load_baselines dir in
  print_string (W5_obs.Baseline.schema_skeleton groups);
  `Ok ()

let perf_schema_cmd =
  let term = Term.(ret (const perf_schema $ perf_dir_arg)) in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Print the baseline schema skeleton — group and test names \
             plus field layout, none of the values. CI byte-diffs this \
             against test/golden/bench_schema.txt.")
    term

let perf_cmd =
  Cmd.group
    (Cmd.info "perf"
       ~doc:"Performance baselines: report committed numbers, diff a \
             fresh run against them, record new baselines.")
    [ perf_report_cmd; perf_diff_cmd; perf_record_cmd; perf_schema_cmd ]

(* ---- w5 soak: scripted heavy traffic through the scheduler ---- *)

let soak seed users requests waves quantum rate =
  let cfg =
    {
      W5_workload.Soak.default_config with
      W5_workload.Soak.seed;
      users;
      requests;
      waves;
      quantum;
      rate;
    }
  in
  let _, summary = W5_workload.Soak.run cfg in
  print_string (W5_workload.Soak.render summary);
  (* a leaked (or unlabeled) canary is a perimeter breach: exit with
     the shared Critical code rather than a soak-private convention *)
  if
    summary.W5_workload.Soak.s_canary_leaks > 0
    || summary.W5_workload.Soak.s_unlabeled_canaries > 0
  then
    exit (W5_analysis.Severity.exit_code (Some W5_analysis.Severity.Critical))
  else `Ok ()

let soak_cmd =
  let requests =
    Arg.(value & opt int 1200 & info [ "requests"; "n" ] ~docv:"N"
           ~doc:"Requests to admit across the whole run.")
  in
  let users =
    Arg.(value & opt int 50 & info [ "users" ] ~docv:"N"
           ~doc:"Users in the synthetic society.")
  in
  let waves =
    Arg.(value & opt int 1 & info [ "waves" ] ~docv:"N"
           ~doc:"Admission waves the trace is split into (1 = everything \
                 in flight at once).")
  in
  let quantum =
    Arg.(value & opt int W5_os.Sched.default_quantum
         & info [ "quantum" ] ~docv:"TICKS"
             ~doc:"Scheduler ticks per slice.")
  in
  let rate =
    Arg.(value & opt (some (pair ~sep:',' int int)) None
         & info [ "rate" ] ~docv:"CAP,REFILL"
             ~doc:"Token-bucket throttle per client (capacity, refill per \
                   tick); absent = unthrottled.")
  in
  let term =
    Term.(ret (const soak $ seed_arg $ users $ requests $ waves $ quantum
               $ rate))
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Admit a whole seeded trace through the gateway, interleave \
             every in-flight request with the deterministic scheduler, and \
             print the soak summary (canary leaks, preemptions, digest). \
             Same seed, same bytes.")
    term

(* ---- w5 experiments: the index ---- *)

let experiments () =
  print_string
    "Experiment index (full table in DESIGN.md \xc2\xa74, results in EXPERIMENTS.md)\n\
     \n\
    \  F1  Figure 1 silo baseline .......... bench fig1-baseline, examples/quickstart.exe\n\
    \  F2  Figure 2 W5 meta-application .... bench e2e-request, examples/quickstart.exe\n\
    \  E1  boilerplate privacy ............. test integration+apps, bench export-check\n\
    \  E2  declassifiers ................... test integration, bench declassifier\n\
    \  E3  write protection ................ test os/apps (vandal)\n\
    \  E4  read/integrity protection ....... test integration (read protection e2e)\n\
    \  E5  code search ..................... test rank, bench pagerank, w5 rank\n\
    \  E6  multi-provider federation ....... test federation, bench federation-sync, w5 sync\n\
    \  E7  resource allocation ............. test os/apps (hog, spammer), bench syscall\n\
    \  E8  covert channels ................. test store, bench query-taint\n\
    \  E9  client-side JavaScript .......... test http/integration, bench client-filter\n\
    \  E10 server-side mashup .............. test apps, examples/photo_mashup.exe\n\
    \  E11 fork + version pinning .......... test platform/integration\n\
    \  E12 recommendation/dating/chameleon . test apps, examples/recommendation.exe\n\
    \  P1  enforcement overhead ............ bench e2e-request (on vs off)\n\
    \  E13 messaging (safe queries) ........ test apps (message*), bench query-taint\n\
    \  E14 transforming declassifiers ...... test apps (calendar, polls)\n\
    \  E15 groups (restricted tags) ........ test platform/apps (group*), bench collaboration\n\
    \  E16 DNS front-end ................... test http/integration (dns*)\n\
    \  E17 e-mail is an export ............. test apps (digest email)\n\
    \  E18 provider operations ............. test platform (admin, limits), bench durability\n\
    \  E19 data portability ................ test federation (migrate*, takeout), w5 export\n\
    \  E20 static vetting (\xc2\xa73.2) ........... test analysis, bench vet, w5 vet\n\
    \  OBS federation telemetry (\xc2\xa73.5) ..... test trace, bench trace-health, w5 trace --federated, w5 health\n\
    \  SCHED concurrent serving (\xc2\xa73.5) ...... test sched/soak, bench scheduler, w5 soak\n";
  `Ok ()

let experiments_cmd =
  let term = Term.(ret (const experiments $ const ())) in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Print the experiment-to-artifact index.")
    term

let main_cmd =
  let doc = "World Wide Web Without Walls — simulated provider driver" in
  let info = Cmd.info "w5" ~version:"1.0" ~doc in
  Cmd.group info
    [ serve_cmd; audit_cmd; explain_cmd; provenance_cmd; audit_report_cmd;
      rank_cmd; sync_cmd; trace_cmd; health_cmd; export_cmd; stats_cmd;
      vet_cmd; perf_cmd; soak_cmd; experiments_cmd ]

let () = exit (Cmd.eval main_cmd)
