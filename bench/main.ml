(* The W5 benchmark harness.

   The paper (HotNets 2007) is a position paper: its only "figures"
   are the two architecture diagrams and it reports no measurements.
   This suite therefore regenerates, for every experiment row in
   DESIGN.md §4, the *characterization* a systems reader would demand
   of the prototype the paper defers to future work:

   - fig1-baseline / fig2-w5 : the same user action on the silo model
     and on the W5 meta-application (F1/F2);
   - e2e-request             : full HTTP requests with enforcement on
     vs off — the DIFC overhead (P1; Flume reports 30-45% on Apache
     workloads as the shape reference);
   - label-ops               : the inner-loop lattice operations at
     several label sizes, plus the sorted-array ablation (DESIGN §5);
   - export-check / declassifier : perimeter and gate costs (E1/E2);
   - query-taint             : the covert-channel-safe query engine vs
     the leaky baseline at several collection sizes (E8);
   - pagerank                : code-search ranking cost and
     convergence (E5);
   - federation-sync         : steady-state and one-update sync (E6);
   - federation-faults       : convergence cost vs message drop rate
     under seeded fault injection (retries + backoff);
   - syscall                 : raw kernel-crossing costs under quota
     accounting (E7);
   - client-filter           : the perimeter JavaScript filter (E9).

   Heavy fixtures live in {!Fixtures}, built lazily: each group is a
   thunk, so `--only NAME` pays only for the worlds NAME touches.

   Run with:  dune exec bench/main.exe
   Flags:     --smoke         one tiny iteration per test (CI)
              --only NAME     run a single group
              --json-dir DIR  also write BENCH_<group>.json baselines
*)

open Bechamel
open Toolkit
open W5_difc
open W5_http
open W5_platform
module F = Fixtures

let staged = Staged.stage

(* ------------------------------------------------------------------ *)
(* fig1-baseline: the silo model                                       *)
(* ------------------------------------------------------------------ *)

let bench_fig1 () =
  let open W5_apps.Silo_baseline in
  let silo = F.silo () in
  Test.make_grouped ~name:"fig1-baseline"
    [
      Test.make ~name:"get" (staged (fun () -> get_data silo ~user:"amy" ~key:"k00"));
      Test.make ~name:"thief-export"
        (staged (fun () -> thief_export silo ~user:"amy"));
      Test.make ~name:"migrate-10-items"
        (staged (fun () ->
             let target = create_site "target" in
             migrate ~from_site:silo ~to_site:target ~user:"amy"));
    ]

(* ------------------------------------------------------------------ *)
(* fig2-w5 + e2e-request: full requests through the gateway            *)
(* ------------------------------------------------------------------ *)

let bench_e2e () =
  let on_u0 = F.on_u0 () and off_u0 = F.off_u0 () in
  let on_u0_name = F.on_u0_name () and on_u1_name = F.on_u1_name () in
  let friend_client = F.friend_client ()
  and stranger_client = F.stranger_client () in
  let off_u0_name = List.hd (F.off_society ()).W5_workload.Populate.users in
  Test.make_grouped ~name:"e2e-request"
    [
      Test.make ~name:"own-profile-enforcing"
        (staged (fun () ->
             Client.get on_u0 "/app/core/social" ~params:[ ("user", on_u0_name) ]));
      Test.make ~name:"own-profile-no-enforcement"
        (staged (fun () ->
             Client.get off_u0 "/app/core/social"
               ~params:[ ("user", off_u0_name) ]));
      Test.make ~name:"friend-view-via-declassifier"
        (staged (fun () ->
             Client.get friend_client "/app/core/social"
               ~params:[ ("user", on_u1_name) ]));
      Test.make ~name:"denied-view-403"
        (staged (fun () ->
             Client.get stranger_client "/app/core/social"
               ~params:[ ("user", on_u1_name) ]));
      Test.make ~name:"photo-list"
        (staged (fun () ->
             Client.get on_u0 "/app/core/photos"
               ~params:[ ("action", "list"); ("user", on_u0_name) ]));
      Test.make ~name:"photo-upload-write-path"
        (staged
           (let upload_counter = ref 0 in
            fun () ->
              incr upload_counter;
              Client.post on_u0 "/app/core/photos"
                ~form:
                  [
                    ("action", "upload");
                    ("id", Printf.sprintf "bench-%03d" (!upload_counter mod 256));
                    ("data", "0123456789abcdef");
                  ]));
    ]

(* ------------------------------------------------------------------ *)
(* label-ops (+ the sorted-array representation ablation)              *)
(* ------------------------------------------------------------------ *)

(* The alternative representation from DESIGN.md §5: plain sorted int
   arrays. Implemented here, in the bench, so the library keeps exactly
   one canonical representation. *)
module Label_array = struct
  let of_label l = Array.of_list (List.map Tag.id (Label.to_list l))

  let union a b =
    let out = Array.make (Array.length a + Array.length b) 0 in
    let rec go i j k =
      if i = Array.length a then begin
        Array.blit b j out k (Array.length b - j);
        k + Array.length b - j
      end
      else if j = Array.length b then begin
        Array.blit a i out k (Array.length a - i);
        k + Array.length a - i
      end
      else if a.(i) < b.(j) then begin
        out.(k) <- a.(i);
        go (i + 1) j (k + 1)
      end
      else if a.(i) > b.(j) then begin
        out.(k) <- b.(j);
        go i (j + 1) (k + 1)
      end
      else begin
        out.(k) <- a.(i);
        go (i + 1) (j + 1) (k + 1)
      end
    in
    let n = go 0 0 0 in
    Array.sub out 0 n

  let subset a b =
    let rec go i j =
      if i = Array.length a then true
      else if j = Array.length b then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0
end

let label_sizes = [ 1; 8; 64 ]

let labels_of_size n =
  Label.of_list
    (List.init n (fun i ->
         Tag.fresh ~name:(Printf.sprintf "bench%d-%d" n i) Tag.Secrecy))

let bench_label_ops () =
  let label_pairs =
    List.map
      (fun n ->
        let a = labels_of_size n and b = labels_of_size n in
        (n, a, b, Label.union a b))
      label_sizes
  in
  Test.make_grouped ~name:"label-ops"
    (List.concat_map
       (fun (n, a, b, ab) ->
         let arr_a = Label_array.of_label a
         and arr_b = Label_array.of_label b
         and arr_ab = Label_array.of_label ab in
         [
           Test.make ~name:(Printf.sprintf "set-union-%d" n)
             (staged (fun () -> Label.union a b));
           Test.make ~name:(Printf.sprintf "set-subset-%d" n)
             (staged (fun () -> Label.subset a ab));
           Test.make ~name:(Printf.sprintf "array-union-%d" n)
             (staged (fun () -> Label_array.union arr_a arr_b));
           Test.make ~name:(Printf.sprintf "array-subset-%d" n)
             (staged (fun () -> Label_array.subset arr_a arr_ab));
           Test.make
             ~name:(Printf.sprintf "can-flow-%d" n)
             (staged
                (let src = Flow.make ~secrecy:a () in
                 let dst = Flow.make ~secrecy:ab () in
                 fun () -> Flow.can_flow src dst));
         ])
       label_pairs)

(* ------------------------------------------------------------------ *)
(* export-check + declassifier                                         *)
(* ------------------------------------------------------------------ *)

let perimeter_fixture () =
  let platform = (F.on_society ()).W5_workload.Populate.platform in
  let owner = Platform.account_exn platform (F.on_u1_name ()) in
  let labels =
    Flow.make ~secrecy:(Label.singleton owner.Account.secret_tag) ()
  in
  (platform, owner, labels)

let bench_perimeter () =
  let platform, owner, labels = perimeter_fixture () in
  let friend = Platform.account_exn platform (F.friend_of_u1 ()) in
  Test.make_grouped ~name:"export-check"
    [
      Test.make ~name:"owner-allow"
        (staged (fun () ->
             Perimeter.export platform ~viewer:(Some owner) ~data:"payload"
               ~labels ()));
      Test.make ~name:"friend-via-declassifier"
        (staged (fun () ->
             Perimeter.export platform ~viewer:(Some friend) ~data:"payload"
               ~labels ()));
      Test.make ~name:"public-payload"
        (staged (fun () ->
             Perimeter.export platform ~viewer:None ~data:"payload"
               ~labels:Flow.bottom ()));
    ]

let bench_declassifier () =
  (* ablation: running the decision logic inline vs through a kernel
     gate (fresh process, capability transfer, response labels) *)
  let platform, owner, labels = perimeter_fixture () in
  let on_u1_name = F.on_u1_name () and friend_of_u1 = F.friend_of_u1 () in
  let inline () =
    Platform.with_ctx platform ~name:"inline-declass" ~labels
      ~caps:owner.Account.caps (fun ctx ->
        Ok
          (Declassifier.friends_only ctx ~owner:on_u1_name
             ~viewer:(Some friend_of_u1) ~data:"payload"))
  in
  let gate_name = Declassifier.gate_name ~owner:on_u1_name ~name:"friends" in
  let via_gate () =
    Platform.with_ctx platform ~name:"gate-declass" ~labels (fun ctx ->
        W5_os.Syscall.invoke_gate ctx gate_name
          ~arg:
            (Declassifier.encode_arg ~viewer:(Some friend_of_u1)
               ~data:"payload"))
  in
  Test.make_grouped ~name:"declassifier"
    [
      Test.make ~name:"logic-inline" (staged inline);
      Test.make ~name:"logic-via-gate" (staged via_gate);
    ]

(* ------------------------------------------------------------------ *)
(* query-taint (E8)                                                    *)
(* ------------------------------------------------------------------ *)

let bench_query () =
  let kernel = F.query_kernel () in
  Test.make_grouped ~name:"query-taint"
    (List.concat_map
       (fun n ->
         let collection = Printf.sprintf "c%d" n in
         let where = W5_store.Query.field_equals "from" "bob" in
         [
           Test.make
             ~name:(Printf.sprintf "safe-select-%d" n)
             (staged (fun () ->
                  W5_store.Query.select (F.spawn_on kernel "q") ~collection
                    ~where));
           Test.make
             ~name:(Printf.sprintf "leaky-select-%d" n)
             (staged (fun () ->
                  W5_store.Query.select_leaky (F.spawn_on kernel "q")
                    ~collection ~where));
         ])
       F.query_sizes)

(* ------------------------------------------------------------------ *)
(* query-index: indexed vs scanning selects                            *)
(* ------------------------------------------------------------------ *)

(* Collections sized 10..10k where "u" takes n/10 distinct values (so
   an equality hit returns ~10 rows) and "score" is the row number (so
   a range query over the top 10 also returns 10). The planner serves
   both from the index; [~use_index:false] is the scan baseline. *)
let bench_query_index () =
  let kernel = F.index_kernel () in
  Test.make_grouped ~name:"query-index"
    (List.concat_map
       (fun n ->
         let collection = F.index_collection n in
         let eq = W5_store.Query.field_equals "u" "u1" in
         let range = W5_store.Query.field_int_at_least "score" (n - 10) in
         [
           Test.make
             ~name:(Printf.sprintf "indexed-eq-%d" n)
             (staged (fun () ->
                  W5_store.Query.select (F.spawn_on kernel "q") ~collection
                    ~where:eq));
           Test.make
             ~name:(Printf.sprintf "scan-eq-%d" n)
             (staged (fun () ->
                  W5_store.Query.select ~use_index:false
                    (F.spawn_on kernel "q") ~collection ~where:eq));
           Test.make
             ~name:(Printf.sprintf "indexed-range-%d" n)
             (staged (fun () ->
                  W5_store.Query.select (F.spawn_on kernel "q") ~collection
                    ~where:range));
           Test.make
             ~name:(Printf.sprintf "scan-range-%d" n)
             (staged (fun () ->
                  W5_store.Query.select ~use_index:false
                    (F.spawn_on kernel "q") ~collection ~where:range));
         ])
       F.index_sizes)

(* The headline number (rows actually visited, not wall time), printed
   from the counters so BENCH output shows the O(result)-vs-
   O(collection) gap directly. *)
let report_rows_scanned () =
  let kernel = F.index_kernel () in
  let metric =
    W5_obs.Metrics.counter
      (W5_os.Kernel.metrics kernel)
      "w5_store_rows_scanned_total" ~help:"Rows visited by store queries"
  in
  let rows_visited_by f =
    let before = W5_obs.Metrics.value metric in
    f ();
    W5_obs.Metrics.value metric - before
  in
  let collection = F.index_collection 10000 in
  let where = W5_store.Query.field_equals "u" "u1" in
  let indexed =
    rows_visited_by (fun () ->
        ignore
          (W5_store.Query.select (F.spawn_on kernel "q") ~collection ~where))
  in
  let scanned =
    rows_visited_by (fun () ->
        ignore
          (W5_store.Query.select ~use_index:false (F.spawn_on kernel "q")
             ~collection ~where))
  in
  Printf.printf
    "\nquery-index rows visited at 10k rows (field_equals, 10 matches):\n";
  Printf.printf "  indexed: %d   scan: %d   (%.0fx fewer labeled reads)\n"
    indexed scanned
    (float_of_int scanned /. float_of_int (max 1 indexed))

(* ------------------------------------------------------------------ *)
(* pagerank (E5)                                                       *)
(* ------------------------------------------------------------------ *)

let bench_pagerank () =
  let graph_100 = F.graph_100 () and graph_1000 = F.graph_1000 () in
  Test.make_grouped ~name:"pagerank"
    [
      Test.make ~name:"compute-100"
        (staged (fun () -> W5_rank.Pagerank.compute graph_100));
      Test.make ~name:"compute-1000"
        (staged (fun () -> W5_rank.Pagerank.compute graph_1000));
      Test.make ~name:"score-registry"
        (staged (fun () ->
             W5_rank.Code_search.score_all
               (Platform.registry (F.on_society ()).W5_workload.Populate.platform)));
    ]

(* ------------------------------------------------------------------ *)
(* federation-sync (E6)                                                *)
(* ------------------------------------------------------------------ *)

let sync_counter = ref 0

let bench_federation () =
  let link = F.sync_link () and side_a = F.sync_side_a () in
  Test.make_grouped ~name:"federation-sync"
    [
      Test.make ~name:"steady-state-round"
        (staged (fun () -> W5_federation.Sync.sync link));
      Test.make ~name:"one-update-round"
        (staged (fun () ->
             incr sync_counter;
             let account =
               Platform.account_exn side_a.W5_federation.Sync.platform "zoe"
             in
             ignore
               (Platform.write_user_record side_a.W5_federation.Sync.platform
                  account ~file:"profile"
                  (W5_store.Record.of_fields
                     [ ("user", "zoe"); ("rev", string_of_int !sync_counter) ]));
             W5_federation.Sync.sync link));
    ]

(* ------------------------------------------------------------------ *)
(* federation-faults: convergence cost vs message drop rate            *)
(* ------------------------------------------------------------------ *)

let faulty_counter = ref 0

(* One measured unit: an edit on side A driven to convergence under a
   fresh seeded plan with [drops] message losses (no crashes — wall
   time under retries/backoff is the question here). The seed comes
   from a counter so every iteration faces a different but
   reproducible schedule. *)
let converge_under_drops ~drops () =
  incr faulty_counter;
  let link = F.faulty_link () and side_a = F.faulty_side_a () in
  W5_federation.Sync.set_faults link
    (W5_fault.Fault.of_seed ~drops ~delays:0 ~duplicates:0 ~crashes:0
       ~seed:!faulty_counter ());
  let account = Platform.account_exn side_a.W5_federation.Sync.platform "zoe" in
  ignore
    (Platform.write_user_record side_a.W5_federation.Sync.platform account
       ~file:"profile"
       (W5_store.Record.of_fields
          [ ("user", "zoe"); ("rev", string_of_int !faulty_counter) ]));
  let rec go n =
    if n > 0 && not (W5_federation.Sync.converged link) then begin
      ignore (W5_federation.Sync.sync link);
      go (n - 1)
    end
  in
  go 10

let bench_federation_faults () =
  Test.make_grouped ~name:"federation-faults"
    [
      Test.make ~name:"converge-drops-0"
        (staged (converge_under_drops ~drops:0));
      Test.make ~name:"converge-drops-2"
        (staged (converge_under_drops ~drops:2));
      Test.make ~name:"converge-drops-6"
        (staged (converge_under_drops ~drops:6));
    ]

(* ------------------------------------------------------------------ *)
(* portability: whole-account export (E19)                             *)
(* ------------------------------------------------------------------ *)

let bench_portability () =
  let platform = (F.on_society ()).W5_workload.Populate.platform in
  let takeout_account = Platform.account_exn platform (F.on_u0_name ()) in
  Test.make_grouped ~name:"portability"
    [
      Test.make ~name:"export-bundle"
        (staged (fun () ->
             W5_federation.Migrate.export_bundle platform takeout_account));
      Test.make ~name:"encode-bundle"
        (staged
           (let bundle =
              match
                W5_federation.Migrate.export_bundle platform takeout_account
              with
              | Ok b -> b
              | Error _ -> []
            in
            fun () -> W5_federation.Migrate.encode_bundle bundle));
    ]

(* ------------------------------------------------------------------ *)
(* syscall micro-costs under quota accounting (E7)                     *)
(* ------------------------------------------------------------------ *)

let create_counter = ref 0

let bench_syscall () =
  let ctx = F.file_ctx () in
  Test.make_grouped ~name:"syscall"
    [
      Test.make ~name:"file-exists"
        (staged (fun () -> W5_os.Syscall.file_exists ctx "/bench-file"));
      Test.make ~name:"read-taint-256B"
        (staged (fun () -> W5_os.Syscall.read_file_taint ctx "/bench-file"));
      Test.make ~name:"read-strict-256B"
        (staged (fun () -> W5_os.Syscall.read_file ctx "/bench-file"));
      Test.make ~name:"write-256B"
        (staged (fun () ->
             W5_os.Syscall.write_file ctx "/bench-file"
               ~data:(String.make 256 'y')));
      Test.make ~name:"create-unlink"
        (staged (fun () ->
             incr create_counter;
             let path = Printf.sprintf "/bench-tmp-%d" !create_counter in
             ignore
               (W5_os.Syscall.create_file ctx path ~labels:Flow.bottom
                  ~data:"x");
             W5_os.Syscall.unlink ctx path));
    ]

(* ------------------------------------------------------------------ *)
(* scheduler: deterministic interleaving cost and throughput           *)
(* ------------------------------------------------------------------ *)

(* Each measured unit builds a fresh kernel holding [n] small
   processes (one file create plus a few read/consume rounds each) and
   drains it — whole-run cost including admission, seeded picks,
   context switches and effect-continuation capture. [sequential]
   drains the identical world through plain {!W5_os.Kernel.run}, so
   the seeded/sequential ratio is the price of interleaving itself. *)
let sched_world n =
  let kernel = W5_os.Kernel.create () in
  for i = 1 to n do
    ignore
      (W5_os.Kernel.spawn kernel
         ~name:(Printf.sprintf "p%d" i)
         ~owner:(Principal.make Principal.Developer "bench")
         ~labels:Flow.bottom ~caps:Capability.Set.empty
         ~limits:W5_os.Resource.default_app_limits
         (fun ctx ->
           let path = Printf.sprintf "/bench-%d" i in
           ignore
             (W5_os.Syscall.create_file ctx path ~labels:Flow.bottom ~data:"x");
           for _ = 1 to 3 do
             ignore (W5_os.Syscall.read_file ctx path);
             ignore (W5_os.Syscall.consume ctx ~cpu:1)
           done))
  done;
  kernel

let bench_sched () =
  let drain ~n ~quantum ~policy () =
    ignore (W5_os.Sched.run ~quantum ~policy (sched_world n))
  in
  let seeded = W5_os.Sched.Seeded 42 in
  Test.make_grouped ~name:"scheduler"
    [
      Test.make ~name:"drain-seeded-16"
        (staged (drain ~n:16 ~quantum:4 ~policy:seeded));
      Test.make ~name:"drain-seeded-64"
        (staged (drain ~n:64 ~quantum:4 ~policy:seeded));
      Test.make ~name:"drain-seeded-256"
        (staged (drain ~n:256 ~quantum:4 ~policy:seeded));
      Test.make ~name:"drain-fifo-64"
        (staged (drain ~n:64 ~quantum:4 ~policy:W5_os.Sched.Fifo));
      Test.make ~name:"drain-seeded-64-quantum1"
        (staged (drain ~n:64 ~quantum:1 ~policy:seeded));
      Test.make ~name:"sequential-64"
        (staged (fun () -> W5_os.Kernel.run (sched_world 64)));
    ]

(* The tick-level shape: per-slice logical latency quantiles straight
   from the w5_sched_slice_ticks histogram, at two concurrency levels —
   "p95 dispatch ticks vs concurrency" without any wall clock. *)
let report_sched_ticks () =
  Printf.printf "\nscheduler slice ticks (logical, quantum=4, seeded):\n";
  List.iter
    (fun n ->
      let kernel = sched_world n in
      ignore (W5_os.Sched.run ~quantum:4 ~policy:(W5_os.Sched.Seeded 42) kernel);
      match
        List.assoc_opt "w5_sched_slice_ticks"
          (W5_obs.Perf.summaries (W5_os.Kernel.metrics kernel))
      with
      | None -> Printf.printf "  %4d procs: (no histogram)\n" n
      | Some s ->
          let q = function
            | None -> "?"
            | Some e -> W5_obs.Perf.render_estimate e
          in
          Printf.printf "  %4d procs: %d slices, p50<=%s p95<=%s p99<=%s\n" n
            s.W5_obs.Perf.q_count (q s.W5_obs.Perf.q_p50)
            (q s.W5_obs.Perf.q_p95) (q s.W5_obs.Perf.q_p99))
    [ 16; 256 ]

(* ------------------------------------------------------------------ *)
(* metrics-overhead: what instrumentation costs on the syscall path    *)
(* ------------------------------------------------------------------ *)

(* Three kernels running the identical read: registry on (the
   default), registry off (one branch per metric site), and registry
   on with the tracer also recording spans. *)
let bench_metrics () =
  let metered_ctx = F.file_ctx () in
  let unmetered_ctx =
    let ctx = F.file_ctx () in
    W5_obs.Metrics.set_enabled
      (W5_os.Kernel.metrics ctx.W5_os.Kernel.kernel)
      false;
    ctx
  in
  let traced_ctx =
    let ctx = F.file_ctx () in
    W5_obs.Tracer.set_enabled (W5_os.Kernel.tracer ctx.W5_os.Kernel.kernel) true;
    ctx
  in
  let obs_registry = W5_obs.Metrics.create () in
  let obs_counter =
    W5_obs.Metrics.counter obs_registry "bench_counter" ~help:"bench"
  in
  let obs_histogram =
    W5_obs.Metrics.histogram obs_registry "bench_histogram" ~help:"bench"
  in
  Test.make_grouped ~name:"metrics-overhead"
    [
      Test.make ~name:"read-taint-metered"
        (staged (fun () -> W5_os.Syscall.read_file_taint metered_ctx "/bench-file"));
      Test.make ~name:"read-taint-unmetered"
        (staged (fun () ->
             W5_os.Syscall.read_file_taint unmetered_ctx "/bench-file"));
      Test.make ~name:"read-taint-traced"
        (staged (fun () -> W5_os.Syscall.read_file_taint traced_ctx "/bench-file"));
      Test.make ~name:"counter-inc"
        (staged (fun () ->
             W5_obs.Metrics.inc obs_counter ~labels:[ ("op", "bench") ]));
      Test.make ~name:"histogram-observe"
        (staged (fun () -> W5_obs.Metrics.observe obs_histogram 42));
    ]

(* ------------------------------------------------------------------ *)
(* client-filter (E9)                                                  *)
(* ------------------------------------------------------------------ *)

let bench_filter () =
  let page_clean =
    Html.page ~title:"clean"
      (String.concat ""
         (List.init 100 (fun i -> Html.element "p" (Printf.sprintf "para %d" i))))
  in
  let page_scripted =
    Html.page ~title:"evil"
      (String.concat ""
         (List.init 100 (fun i ->
              if i mod 10 = 0 then
                "<script>alert(" ^ string_of_int i ^ ")</script>"
              else Html.element "p" ~attrs:[ ("onclick", "x()") ] "text")))
  in
  let page_marked =
    Html.page ~title:"calendar"
      (String.concat ""
         (List.init 100 (fun i ->
              if i mod 3 = 0 then
                Declassifier.secret_span (Printf.sprintf "event %d" i)
              else Html.element "p" "free slot")))
  in
  Test.make_grouped ~name:"client-filter"
    [
      Test.make ~name:"redact-marked-10KB"
        (staged (fun () -> Declassifier.redact_spans page_marked));
      Test.make ~name:"detect-clean-10KB"
        (staged (fun () -> Html.contains_script page_clean));
      Test.make ~name:"strip-clean-10KB"
        (staged (fun () -> Html.strip_scripts page_clean));
      Test.make ~name:"strip-scripted-10KB"
        (staged (fun () -> Html.strip_scripts page_scripted));
    ]

(* ------------------------------------------------------------------ *)
(* collaboration: groups and messaging                                 *)
(* ------------------------------------------------------------------ *)

let group_post_counter = ref 0

let bench_collab () =
  let platform = F.collab_platform ()
  and group = F.collab_group ()
  and founder = F.collab_founder ()
  and member = F.collab_member () in
  (* read and caps lookups run before the post bench floods the
     directory, so "20 posts" stays honest *)
  Test.make_grouped ~name:"collaboration"
    [
      Test.make ~name:"member-caps-lookup"
        (staged (fun () -> Group.member_caps platform ~user:"member"));
      Test.make ~name:"group-read-20-posts"
        (staged (fun () -> Group.read_posts platform group ~reader:member));
      Test.make ~name:"group-post"
        (staged (fun () ->
             incr group_post_counter;
             Group.post platform group ~author:founder
               ~id:(Printf.sprintf "p%06d" !group_post_counter)
               ~body:"benchmark post"));
    ]

(* ------------------------------------------------------------------ *)
(* rank-ablation: HITS vs PageRank (DESIGN §5)                          *)
(* ------------------------------------------------------------------ *)

let bench_rank_ablation () =
  let graph_100 = F.graph_100 () and graph_1000 = F.graph_1000 () in
  Test.make_grouped ~name:"rank-ablation"
    [
      Test.make ~name:"hits-100"
        (staged (fun () -> W5_rank.Hits.compute graph_100));
      Test.make ~name:"hits-1000"
        (staged (fun () -> W5_rank.Hits.compute graph_1000));
    ]

(* ------------------------------------------------------------------ *)
(* durability: filesystem snapshot / restore                           *)
(* ------------------------------------------------------------------ *)

let bench_durability () =
  let fs =
    W5_os.Kernel.fs
      (Platform.kernel (F.on_society ()).W5_workload.Populate.platform)
  in
  let image = W5_os.Fs.snapshot fs in
  Test.make_grouped ~name:"durability"
    [
      Test.make ~name:"snapshot-populated-fs"
        (staged (fun () -> W5_os.Fs.snapshot fs));
      Test.make ~name:"restore-populated-fs"
        (staged (fun () -> W5_os.Fs.restore_into fs image));
    ]

(* ------------------------------------------------------------------ *)
(* scaling: trace replay vs society size                               *)
(* ------------------------------------------------------------------ *)

let bench_scaling () =
  Test.make_grouped ~name:"scaling"
    (List.map
       (fun (n, society) ->
         let rng = W5_workload.Rng.create ~seed:77 in
         let actions =
           W5_workload.Trace.generate rng ~society
             ~mix:W5_workload.Trace.read_heavy ~length:50
         in
         Test.make
           ~name:(Printf.sprintf "replay-50-actions-%d-users" n)
           (staged (fun () -> W5_workload.Trace.replay society actions)))
       (F.scaling_societies ()))

(* ------------------------------------------------------------------ *)
(* provenance: graph reconstruction cost vs audit-log size             *)
(* ------------------------------------------------------------------ *)

let bench_provenance () =
  let logs = F.provenance_logs () in
  let big_log = F.provenance_big_log () in
  let big_graph = F.provenance_big_graph () in
  Test.make_grouped ~name:"provenance"
    (List.map
       (fun (n, log) ->
         Test.make
           ~name:(Printf.sprintf "graph-build-%dk-entries" (n / 1000))
           (staged (fun () -> W5_os.Explain.graph log)))
       logs
    @ [
        Test.make ~name:"explain-denial-100k"
          (staged (fun () ->
               match W5_os.Explain.find_denial big_log () with
               | None -> failwith "bench: no denial in synthetic log"
               | Some entry -> W5_os.Explain.explain big_graph entry));
      ])

(* ------------------------------------------------------------------ *)
(* vet: whole-platform static analysis time vs. ecosystem size         *)
(* ------------------------------------------------------------------ *)

let bench_vet () =
  Test.make_grouped ~name:"vet"
    (List.map
       (fun (n, platform) ->
         Test.make
           ~name:(Printf.sprintf "capture-analyze-%d-apps" n)
           (staged (fun () ->
                W5_analysis.Vet.analyze (W5_analysis.Static.capture platform))))
       (F.vet_platforms ()))

(* ------------------------------------------------------------------ *)
(* vet-concurrency: preemption-aware interference analysis             *)
(* ------------------------------------------------------------------ *)

let bench_vet_concurrency () =
  let model = F.interfere_model () in
  let toctou = W5_analysis.Interfere.seed_toctou model in
  let log = F.interfere_soak_log () in
  (* the oracle's cost on the largest configuration tests accept *)
  let oracle_model =
    let prog name ops =
      {
        W5_analysis.Mhp.name;
        multiplicity = 1;
        steps =
          List.map (fun op -> { W5_analysis.Mhp.ctx = W5_analysis.Mhp.Direct; op }) ops;
      }
    in
    W5_analysis.Mhp.make
      [
        prog "a" [ "fs.stat"; "fs.read"; "fs.write" ];
        prog "b" [ "fs.relabel"; "fs.unlink" ];
        prog "c" [ "ipc.send"; "ipc.recv" ];
      ]
  in
  Test.make_grouped ~name:"vet-concurrency"
    ([
       Test.make ~name:"analyze-showcase-model"
         (staged (fun () -> W5_analysis.Interfere.analyze model));
       Test.make ~name:"analyze-toctou-model"
         (staged (fun () -> W5_analysis.Interfere.analyze toctou));
       Test.make ~name:"fold-audit-soak-log"
         (staged (fun () -> W5_analysis.Interfere.fold_audit model log));
       Test.make ~name:"oracle-interleavings-3x7"
         (staged (fun () -> W5_analysis.Mhp.interleavings oracle_model));
     ]
    @ List.map
        (fun (n, platform) ->
          Test.make
            ~name:(Printf.sprintf "capture-model-analyze-%d-apps" n)
            (staged (fun () ->
                 W5_analysis.Interfere.analyze
                   (W5_analysis.Interfere.model_of_static
                      (W5_analysis.Static.capture platform)))))
        (F.vet_platforms ()))

(* ------------------------------------------------------------------ *)
(* trace-health: tracing overhead, merge scaling, health rollup        *)
(* ------------------------------------------------------------------ *)

let bench_trace_health () =
  let traced_link = F.traced_link () and untraced_link = F.untraced_link () in
  let trace_1k = F.synthetic_trace_1k ()
  and trace_10k = F.synthetic_trace_10k () in
  let health = F.health_loaded () in
  (* a pre-filled ring: every commit below evicts the oldest trace,
     measuring the O(1) eviction path *)
  let ring = W5_obs.Tracer.create ~enabled:true ~capacity:16 () in
  for i = 1 to 16 do
    W5_obs.Tracer.start_span ring ~tick:i "warm";
    W5_obs.Tracer.end_span ring ~tick:(i + 1)
  done;
  let ring_tick = ref 16 in
  Test.make_grouped ~name:"trace-health"
    [
      Test.make ~name:"sync-round-traced"
        (staged (fun () -> W5_federation.Sync.sync traced_link));
      Test.make ~name:"sync-round-untraced"
        (staged (fun () -> W5_federation.Sync.sync untraced_link));
      Test.make ~name:"commit-at-capacity"
        (staged (fun () ->
             incr ring_tick;
             W5_obs.Tracer.start_span ring ~tick:!ring_tick "bench";
             W5_obs.Tracer.end_span ring ~tick:!ring_tick));
      Test.make ~name:"merge-1k-spans"
        (staged (fun () -> W5_obs.Trace_merge.merge trace_1k));
      Test.make ~name:"merge-10k-spans"
        (staged (fun () -> W5_obs.Trace_merge.merge trace_10k));
      Test.make ~name:"health-report-90-pairs"
        (staged (fun () ->
             W5_obs.Health.report health ~now:(fun _ -> 10_000)));
    ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let group_thunks =
  [
    ("fig1-baseline", bench_fig1);
    ("e2e-request", bench_e2e);
    ("label-ops", bench_label_ops);
    ("export-check", bench_perimeter);
    ("declassifier", bench_declassifier);
    ("query-taint", bench_query);
    ("query-index", bench_query_index);
    ("pagerank", bench_pagerank);
    ("rank-ablation", bench_rank_ablation);
    ("collaboration", bench_collab);
    ("durability", bench_durability);
    ("scaling", bench_scaling);
    ("federation-sync", bench_federation);
    ("federation-faults", bench_federation_faults);
    ("portability", bench_portability);
    ("syscall", bench_syscall);
    ("scheduler", bench_sched);
    ("metrics-overhead", bench_metrics);
    ("client-filter", bench_filter);
    ("provenance", bench_provenance);
    ("vet", bench_vet);
    ("vet-concurrency", bench_vet_concurrency);
    ("trace-health", bench_trace_health);
  ]

(* --smoke: one tiny iteration per test in every group, for CI —
   proves every bench fixture and body still runs, without measuring
   anything. *)
let smoke = Array.exists (( = ) "--smoke") Sys.argv

(* --only NAME: run a single group. Fixtures are lazy, so only the
   worlds NAME touches get built. *)
let only =
  let rec find = function
    | "--only" :: name :: _ -> Some name
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* --json-dir DIR: additionally write one BENCH_<group>.json baseline
   per group run (schema in W5_obs.Baseline), for `w5 perf`. *)
let json_dir =
  let rec find = function
    | "--json-dir" :: dir :: _ -> Some dir
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let selected =
  match only with
  | None -> group_thunks
  | Some name -> List.filter (fun (n, _) -> n = name) group_thunks

let run_and_analyze test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:1 ~quota:(Time.second 0.001) ~kde:None
        ~stabilize:false ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
        ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  (raw, Analyze.all ols instance raw)

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> None
  | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Some t
      | Some [] | None -> None)

(* bechamel names tests "group/test"; baseline entries keep just the
   test part since the group is the file. *)
let strip_group_prefix ~group_name name =
  let prefix = group_name ^ "/" in
  let pn = String.length prefix in
  if String.length name > pn && String.sub name 0 pn = prefix then
    String.sub name pn (String.length name - pn)
  else name

let baseline_of_group ~group_name ~raw ~results names =
  let entries =
    List.filter_map
      (fun name ->
        match (estimate results name, Hashtbl.find_opt raw name) with
        | Some ns, Some (b : Benchmark.t) ->
            let r2 =
              match Hashtbl.find_opt results name with
              | Some ols -> Option.value ~default:0.0 (Analyze.OLS.r_square ols)
              | None -> 0.0
            in
            Some
              {
                W5_obs.Baseline.e_name = strip_group_prefix ~group_name name;
                e_runs = b.Benchmark.stats.samples;
                e_ns = ns;
                e_r2 = r2;
              }
        | _ -> None)
      names
  in
  W5_obs.Baseline.make_group ~name:group_name entries

let pp_ns fmt t =
  if t > 1e6 then Format.fprintf fmt "%10.3f ms" (t /. 1e6)
  else if t > 1e3 then Format.fprintf fmt "%10.3f us" (t /. 1e3)
  else Format.fprintf fmt "%10.1f ns" t

let () =
  Printf.printf "W5 benchmark harness (one group per DESIGN.md experiment)\n";
  Printf.printf "==========================================================\n%!";
  let all_results = Hashtbl.create 128 in
  let baselines = ref [] in
  List.iter
    (fun (group_name, thunk) ->
      Printf.printf "\n[%s]\n%!" group_name;
      let group = thunk () in
      let raw, results = run_and_analyze group in
      let names = Test.names group in
      (* stable presentation: the declared test order *)
      List.iter
        (fun name ->
          match estimate results name with
          | Some t ->
              Hashtbl.replace all_results name t;
              Format.printf "  %-45s %a/run@." name pp_ns t
          | None -> Format.printf "  %-45s (no estimate)@." name)
        names;
      if json_dir <> None then
        baselines := baseline_of_group ~group_name ~raw ~results names :: !baselines)
    selected;

  (* the "shape" summary: who wins and by what factor *)
  let ratio a b =
    match (Hashtbl.find_opt all_results a, Hashtbl.find_opt all_results b) with
    | Some x, Some y when y > 0.0 -> Some (x /. y)
    | _ -> None
  in
  let print_ratio label a b =
    match ratio a b with
    | Some r -> Printf.printf "  %-52s %6.2fx\n" label r
    | None -> Printf.printf "  %-52s (n/a)\n" label
  in
  Printf.printf "\nShape summary (cf. EXPERIMENTS.md)\n";
  Printf.printf "----------------------------------\n";
  print_ratio "P1  DIFC enforcement overhead (on/off, e2e request)"
    "e2e-request/own-profile-enforcing"
    "e2e-request/own-profile-no-enforcement";
  print_ratio "F2/F1  W5 request vs silo lookup"
    "e2e-request/own-profile-enforcing" "fig1-baseline/get";
  print_ratio "E2  declassified friend view vs own view"
    "e2e-request/friend-view-via-declassifier"
    "e2e-request/own-profile-enforcing";
  print_ratio "E2  gate invocation vs inline logic"
    "declassifier/logic-via-gate" "declassifier/logic-inline";
  print_ratio "E8  safe query vs leaky baseline (1000 rows)"
    "query-taint/safe-select-1000" "query-taint/leaky-select-1000";
  print_ratio "IDX scan vs indexed equality select (10k rows)"
    "query-index/scan-eq-10000" "query-index/indexed-eq-10000";
  print_ratio "IDX scan vs indexed range select (10k rows)"
    "query-index/scan-range-10000" "query-index/indexed-range-10000";
  print_ratio "E5  pagerank scaling (1000 vs 100 nodes)"
    "pagerank/compute-1000" "pagerank/compute-100";
  print_ratio "E5  hits vs pagerank (1000 nodes)" "rank-ablation/hits-1000"
    "pagerank/compute-1000";
  print_ratio "scaling: 20-user vs 5-user society (50-action replay)"
    "scaling/replay-50-actions-20-users" "scaling/replay-50-actions-5-users";
  print_ratio "E6  one-update sync vs steady state"
    "federation-sync/one-update-round" "federation-sync/steady-state-round";
  print_ratio "label size 64 vs 1 (set union)" "label-ops/set-union-64"
    "label-ops/set-union-1";
  print_ratio "label repr: set vs sorted array (union, 64 tags)"
    "label-ops/set-union-64" "label-ops/array-union-64";
  print_ratio "OBS metrics overhead (metered/unmetered tainting read)"
    "metrics-overhead/read-taint-metered"
    "metrics-overhead/read-taint-unmetered";
  print_ratio "OBS tracing overhead (traced/metered tainting read)"
    "metrics-overhead/read-taint-traced"
    "metrics-overhead/read-taint-metered";
  print_ratio "SCHED interleaved vs sequential drain (64 procs)"
    "scheduler/drain-seeded-64" "scheduler/sequential-64";
  print_ratio "SCHED quantum 1 vs 4 (64 procs, preemption pressure)"
    "scheduler/drain-seeded-64-quantum1" "scheduler/drain-seeded-64";
  print_ratio "SCHED drain scaling (256 vs 16 procs)"
    "scheduler/drain-seeded-256" "scheduler/drain-seeded-16";
  if List.mem_assoc "query-index" selected then report_rows_scanned ();
  if List.mem_assoc "scheduler" selected then report_sched_ticks ();
  (match json_dir with
  | None -> ()
  | Some dir ->
      let groups = List.rev !baselines in
      W5_obs.Baseline.save_dir ~dir groups;
      Printf.printf "\nwrote %d BENCH_<group>.json file(s) to %s\n"
        (List.length groups) dir);
  Printf.printf "\nbench: done\n"
