(* The W5 benchmark harness.

   The paper (HotNets 2007) is a position paper: its only "figures"
   are the two architecture diagrams and it reports no measurements.
   This suite therefore regenerates, for every experiment row in
   DESIGN.md §4, the *characterization* a systems reader would demand
   of the prototype the paper defers to future work:

   - fig1-baseline / fig2-w5 : the same user action on the silo model
     and on the W5 meta-application (F1/F2);
   - e2e-request             : full HTTP requests with enforcement on
     vs off — the DIFC overhead (P1; Flume reports 30-45% on Apache
     workloads as the shape reference);
   - label-ops               : the inner-loop lattice operations at
     several label sizes, plus the sorted-array ablation (DESIGN §5);
   - export-check / declassifier : perimeter and gate costs (E1/E2);
   - query-taint             : the covert-channel-safe query engine vs
     the leaky baseline at several collection sizes (E8);
   - pagerank                : code-search ranking cost and
     convergence (E5);
   - federation-sync         : steady-state and one-update sync (E6);
   - federation-faults       : convergence cost vs message drop rate
     under seeded fault injection (retries + backoff);
   - syscall                 : raw kernel-crossing costs under quota
     accounting (E7);
   - client-filter           : the perimeter JavaScript filter (E9).

   Run with:  dune exec bench/main.exe
*)

open Bechamel
open Toolkit
open W5_difc
open W5_http
open W5_platform

let staged = Staged.stage

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let society ~enforcing =
  W5_workload.Populate.build ~seed:17 ~enforcing ~users:10 ~friends_per_user:3
    ~photos_per_user:2 ~blog_posts_per_user:1 ()

let on_society = society ~enforcing:true
let off_society = society ~enforcing:false

let logged_in (s : W5_workload.Populate.society) user =
  W5_workload.Populate.login s user

(* clients used repeatedly inside benches *)
let on_u0 = logged_in on_society (List.hd on_society.W5_workload.Populate.users)
let off_u0 = logged_in off_society (List.hd off_society.W5_workload.Populate.users)
let on_u0_name = List.hd on_society.W5_workload.Populate.users
let on_u1_name = List.nth on_society.W5_workload.Populate.users 1

(* a viewer who is guaranteed to be u1's friend, and one who is not *)
let friend_of_u1, non_friend_of_u1 =
  let platform = on_society.W5_workload.Populate.platform in
  let account = Platform.account_exn platform on_u1_name in
  match Platform.read_user_record platform account ~file:"friends" with
  | Ok r -> (
      let friends = W5_store.Record.get_list r "friends" in
      let everyone = on_society.W5_workload.Populate.users in
      let non_friend =
        List.find
          (fun u -> u <> on_u1_name && not (List.mem u friends))
          (everyone @ [ "nobody" ])
      in
      match friends with
      | f :: _ -> (f, non_friend)
      | [] -> (on_u0_name, non_friend))
  | Error _ -> (on_u0_name, on_u0_name)

let friend_client = logged_in on_society friend_of_u1

let stranger_client =
  if non_friend_of_u1 = "nobody" then friend_client
  else logged_in on_society non_friend_of_u1

(* ------------------------------------------------------------------ *)
(* fig1-baseline: the silo model                                       *)
(* ------------------------------------------------------------------ *)

let silo =
  let open W5_apps.Silo_baseline in
  let site = create_site "silo" in
  List.iter
    (fun i ->
      set_data site ~user:"amy"
        ~key:(Printf.sprintf "k%02d" i)
        ~value:(String.make 32 'v'))
    (List.init 10 Fun.id);
  site

let bench_fig1 =
  let open W5_apps.Silo_baseline in
  Test.make_grouped ~name:"fig1-baseline"
    [
      Test.make ~name:"get" (staged (fun () -> get_data silo ~user:"amy" ~key:"k00"));
      Test.make ~name:"thief-export"
        (staged (fun () -> thief_export silo ~user:"amy"));
      Test.make ~name:"migrate-10-items"
        (staged (fun () ->
             let target = create_site "target" in
             migrate ~from_site:silo ~to_site:target ~user:"amy"));
    ]

(* ------------------------------------------------------------------ *)
(* fig2-w5 + e2e-request: full requests through the gateway            *)
(* ------------------------------------------------------------------ *)

let bench_e2e =
  Test.make_grouped ~name:"e2e-request"
    [
      Test.make ~name:"own-profile-enforcing"
        (staged (fun () ->
             Client.get on_u0 "/app/core/social" ~params:[ ("user", on_u0_name) ]));
      Test.make ~name:"own-profile-no-enforcement"
        (staged (fun () ->
             Client.get off_u0 "/app/core/social"
               ~params:
                 [ ("user", List.hd off_society.W5_workload.Populate.users) ]));
      Test.make ~name:"friend-view-via-declassifier"
        (staged (fun () ->
             Client.get friend_client "/app/core/social"
               ~params:[ ("user", on_u1_name) ]));
      Test.make ~name:"denied-view-403"
        (staged (fun () ->
             Client.get stranger_client "/app/core/social"
               ~params:[ ("user", on_u1_name) ]));
      Test.make ~name:"photo-list"
        (staged (fun () ->
             Client.get on_u0 "/app/core/photos"
               ~params:[ ("action", "list"); ("user", on_u0_name) ]));
      Test.make ~name:"photo-upload-write-path"
        (staged
           (let upload_counter = ref 0 in
            fun () ->
              incr upload_counter;
              Client.post on_u0 "/app/core/photos"
                ~form:
                  [
                    ("action", "upload");
                    ("id", Printf.sprintf "bench-%03d" (!upload_counter mod 256));
                    ("data", "0123456789abcdef");
                  ]));
    ]

(* ------------------------------------------------------------------ *)
(* label-ops (+ the sorted-array representation ablation)              *)
(* ------------------------------------------------------------------ *)

(* The alternative representation from DESIGN.md §5: plain sorted int
   arrays. Implemented here, in the bench, so the library keeps exactly
   one canonical representation. *)
module Label_array = struct
  let of_label l = Array.of_list (List.map Tag.id (Label.to_list l))

  let union a b =
    let out = Array.make (Array.length a + Array.length b) 0 in
    let rec go i j k =
      if i = Array.length a then begin
        Array.blit b j out k (Array.length b - j);
        k + Array.length b - j
      end
      else if j = Array.length b then begin
        Array.blit a i out k (Array.length a - i);
        k + Array.length a - i
      end
      else if a.(i) < b.(j) then begin
        out.(k) <- a.(i);
        go (i + 1) j (k + 1)
      end
      else if a.(i) > b.(j) then begin
        out.(k) <- b.(j);
        go i (j + 1) (k + 1)
      end
      else begin
        out.(k) <- a.(i);
        go (i + 1) (j + 1) (k + 1)
      end
    in
    let n = go 0 0 0 in
    Array.sub out 0 n

  let subset a b =
    let rec go i j =
      if i = Array.length a then true
      else if j = Array.length b then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0
end

let label_sizes = [ 1; 8; 64 ]

let labels_of_size n =
  Label.of_list
    (List.init n (fun i ->
         Tag.fresh ~name:(Printf.sprintf "bench%d-%d" n i) Tag.Secrecy))

let label_pairs =
  List.map
    (fun n ->
      let a = labels_of_size n and b = labels_of_size n in
      (n, a, b, Label.union a b))
    label_sizes

let bench_label_ops =
  Test.make_grouped ~name:"label-ops"
    (List.concat_map
       (fun (n, a, b, ab) ->
         let arr_a = Label_array.of_label a
         and arr_b = Label_array.of_label b
         and arr_ab = Label_array.of_label ab in
         [
           Test.make ~name:(Printf.sprintf "set-union-%d" n)
             (staged (fun () -> Label.union a b));
           Test.make ~name:(Printf.sprintf "set-subset-%d" n)
             (staged (fun () -> Label.subset a ab));
           Test.make ~name:(Printf.sprintf "array-union-%d" n)
             (staged (fun () -> Label_array.union arr_a arr_b));
           Test.make ~name:(Printf.sprintf "array-subset-%d" n)
             (staged (fun () -> Label_array.subset arr_a arr_ab));
           Test.make
             ~name:(Printf.sprintf "can-flow-%d" n)
             (staged
                (let src = Flow.make ~secrecy:a () in
                 let dst = Flow.make ~secrecy:ab () in
                 fun () -> Flow.can_flow src dst));
         ])
       label_pairs)

(* ------------------------------------------------------------------ *)
(* export-check + declassifier                                         *)
(* ------------------------------------------------------------------ *)

let perimeter_platform = on_society.W5_workload.Populate.platform
let perimeter_owner = Platform.account_exn perimeter_platform on_u1_name
let perimeter_friend = Platform.account_exn perimeter_platform friend_of_u1

let perimeter_labels =
  Flow.make ~secrecy:(Label.singleton perimeter_owner.Account.secret_tag) ()

let bench_perimeter =
  Test.make_grouped ~name:"export-check"
    [
      Test.make ~name:"owner-allow"
        (staged (fun () ->
             Perimeter.export perimeter_platform ~viewer:(Some perimeter_owner)
               ~data:"payload" ~labels:perimeter_labels ()));
      Test.make ~name:"friend-via-declassifier"
        (staged (fun () ->
             Perimeter.export perimeter_platform ~viewer:(Some perimeter_friend)
               ~data:"payload" ~labels:perimeter_labels ()));
      Test.make ~name:"public-payload"
        (staged (fun () ->
             Perimeter.export perimeter_platform ~viewer:None ~data:"payload"
               ~labels:Flow.bottom ()));
    ]

let bench_declassifier =
  (* ablation: running the decision logic inline vs through a kernel
     gate (fresh process, capability transfer, response labels) *)
  let inline () =
    Platform.with_ctx perimeter_platform ~name:"inline-declass"
      ~labels:perimeter_labels ~caps:perimeter_owner.Account.caps (fun ctx ->
        Ok
          (Declassifier.friends_only ctx ~owner:on_u1_name
             ~viewer:(Some friend_of_u1) ~data:"payload"))
  in
  let gate_name = Declassifier.gate_name ~owner:on_u1_name ~name:"friends" in
  let via_gate () =
    Platform.with_ctx perimeter_platform ~name:"gate-declass"
      ~labels:perimeter_labels (fun ctx ->
        W5_os.Syscall.invoke_gate ctx gate_name
          ~arg:
            (Declassifier.encode_arg ~viewer:(Some friend_of_u1)
               ~data:"payload"))
  in
  Test.make_grouped ~name:"declassifier"
    [
      Test.make ~name:"logic-inline" (staged inline);
      Test.make ~name:"logic-via-gate" (staged via_gate);
    ]

(* ------------------------------------------------------------------ *)
(* query-taint (E8)                                                    *)
(* ------------------------------------------------------------------ *)

let query_kernel = W5_os.Kernel.create ()
let query_sizes = [ 10; 100; 1000 ]

let spawn_on kernel name =
  match
    W5_os.Kernel.spawn kernel ~name
      ~owner:(W5_os.Kernel.kernel_principal kernel)
      ~labels:Flow.bottom ~caps:Capability.Set.empty
      ~limits:W5_os.Resource.unlimited (fun _ -> ())
  with
  | Ok proc -> { W5_os.Kernel.kernel; proc }
  | Error _ -> assert false

let () =
  (* seed one collection per size, with a tenth of the rows secret *)
  let seed = spawn_on query_kernel "seed" in
  (match W5_store.Obj_store.init seed with Ok () -> () | Error _ -> assert false);
  List.iter
    (fun n ->
      let collection = Printf.sprintf "c%d" n in
      (match
         W5_store.Obj_store.create_collection seed collection ~labels:Flow.bottom
       with
      | Ok () -> ()
      | Error _ -> assert false);
      List.iter
        (fun i ->
          let labels =
            if i mod 10 = 0 then
              Flow.make
                ~secrecy:
                  (Label.singleton
                     (Tag.fresh
                        ~name:(Printf.sprintf "row%d-%d" n i)
                        Tag.Secrecy))
                ()
            else Flow.bottom
          in
          match
            W5_store.Obj_store.put seed ~collection
              ~id:(Printf.sprintf "r%04d" i)
              ~labels
              (W5_store.Record.of_fields
                 [ ("from", (if i mod 3 = 0 then "bob" else "carol")) ])
          with
          | Ok () -> ()
          | Error _ -> assert false)
        (List.init n Fun.id))
    query_sizes

let bench_query =
  Test.make_grouped ~name:"query-taint"
    (List.concat_map
       (fun n ->
         let collection = Printf.sprintf "c%d" n in
         let where = W5_store.Query.field_equals "from" "bob" in
         [
           Test.make
             ~name:(Printf.sprintf "safe-select-%d" n)
             (staged (fun () ->
                  W5_store.Query.select (spawn_on query_kernel "q") ~collection
                    ~where));
           Test.make
             ~name:(Printf.sprintf "leaky-select-%d" n)
             (staged (fun () ->
                  W5_store.Query.select_leaky (spawn_on query_kernel "q")
                    ~collection ~where));
         ])
       query_sizes)

(* ------------------------------------------------------------------ *)
(* query-index: indexed vs scanning selects                            *)
(* ------------------------------------------------------------------ *)

(* Collections sized 10..10k where "u" takes n/10 distinct values (so
   an equality hit returns ~10 rows) and "score" is the row number (so
   a range query over the top 10 also returns 10). The planner serves
   both from the index; [~use_index:false] is the scan baseline. *)
let index_kernel = W5_os.Kernel.create ()
let index_sizes = [ 10; 100; 1000; 10000 ]
let index_collection n = Printf.sprintf "qi%d" n

let () =
  let seed = spawn_on index_kernel "seed" in
  (match W5_store.Obj_store.init seed with Ok () -> () | Error _ -> assert false);
  List.iter
    (fun n ->
      let collection = index_collection n in
      (match
         W5_store.Obj_store.create_collection seed collection
           ~labels:Flow.bottom
       with
      | Ok () -> ()
      | Error _ -> assert false);
      W5_store.Index.declare seed ~collection ~field:"u"
        W5_store.Index.Equality;
      W5_store.Index.declare seed ~collection ~field:"score"
        W5_store.Index.Int_order;
      List.iter
        (fun i ->
          match
            W5_store.Obj_store.put seed ~collection
              ~id:(Printf.sprintf "r%05d" i)
              ~labels:Flow.bottom
              (W5_store.Record.of_fields
                 [
                   ("u", Printf.sprintf "u%d" (i mod max 1 (n / 10)));
                   ("score", string_of_int i);
                 ])
          with
          | Ok () -> ()
          | Error _ -> assert false)
        (List.init n Fun.id))
    index_sizes

let bench_query_index =
  Test.make_grouped ~name:"query-index"
    (List.concat_map
       (fun n ->
         let collection = index_collection n in
         let eq = W5_store.Query.field_equals "u" "u1" in
         let range = W5_store.Query.field_int_at_least "score" (n - 10) in
         [
           Test.make
             ~name:(Printf.sprintf "indexed-eq-%d" n)
             (staged (fun () ->
                  W5_store.Query.select (spawn_on index_kernel "q") ~collection
                    ~where:eq));
           Test.make
             ~name:(Printf.sprintf "scan-eq-%d" n)
             (staged (fun () ->
                  W5_store.Query.select ~use_index:false
                    (spawn_on index_kernel "q") ~collection ~where:eq));
           Test.make
             ~name:(Printf.sprintf "indexed-range-%d" n)
             (staged (fun () ->
                  W5_store.Query.select (spawn_on index_kernel "q") ~collection
                    ~where:range));
           Test.make
             ~name:(Printf.sprintf "scan-range-%d" n)
             (staged (fun () ->
                  W5_store.Query.select ~use_index:false
                    (spawn_on index_kernel "q") ~collection ~where:range));
         ])
       index_sizes)

(* The headline number (rows actually visited, not wall time), printed
   from the counters so BENCH output shows the O(result)-vs-
   O(collection) gap directly. *)
let report_rows_scanned () =
  let metric =
    W5_obs.Metrics.counter
      (W5_os.Kernel.metrics index_kernel)
      "w5_store_rows_scanned_total" ~help:"Rows visited by store queries"
  in
  let rows_visited_by f =
    let before = W5_obs.Metrics.value metric in
    f ();
    W5_obs.Metrics.value metric - before
  in
  let collection = index_collection 10000 in
  let where = W5_store.Query.field_equals "u" "u1" in
  let indexed =
    rows_visited_by (fun () ->
        ignore
          (W5_store.Query.select (spawn_on index_kernel "q") ~collection ~where))
  in
  let scanned =
    rows_visited_by (fun () ->
        ignore
          (W5_store.Query.select ~use_index:false
             (spawn_on index_kernel "q") ~collection ~where))
  in
  Printf.printf
    "\nquery-index rows visited at 10k rows (field_equals, 10 matches):\n";
  Printf.printf "  indexed: %d   scan: %d   (%.0fx fewer labeled reads)\n"
    indexed scanned
    (float_of_int scanned /. float_of_int (max 1 indexed))

(* ------------------------------------------------------------------ *)
(* pagerank (E5)                                                       *)
(* ------------------------------------------------------------------ *)

let graph_of_size n =
  let rng = W5_workload.Rng.create ~seed:(n + 1) in
  let g = W5_rank.Depgraph.create () in
  List.iter
    (fun i ->
      let node = Printf.sprintf "m%d" i in
      W5_rank.Depgraph.add_node g node;
      if i > 0 then
        List.iter
          (fun _ ->
            let j = W5_workload.Rng.int rng i in
            let j = min j (W5_workload.Rng.int rng i) in
            W5_rank.Depgraph.add_edge g ~src:node ~dst:(Printf.sprintf "m%d" j))
          (List.init (min 3 i) Fun.id))
    (List.init n Fun.id);
  g

let graph_100 = graph_of_size 100
let graph_1000 = graph_of_size 1000

let bench_pagerank =
  Test.make_grouped ~name:"pagerank"
    [
      Test.make ~name:"compute-100"
        (staged (fun () -> W5_rank.Pagerank.compute graph_100));
      Test.make ~name:"compute-1000"
        (staged (fun () -> W5_rank.Pagerank.compute graph_1000));
      Test.make ~name:"score-registry"
        (staged (fun () ->
             W5_rank.Code_search.score_all
               (Platform.registry on_society.W5_workload.Populate.platform)));
    ]

(* ------------------------------------------------------------------ *)
(* federation-sync (E6)                                                *)
(* ------------------------------------------------------------------ *)

let sync_link, sync_side_a =
  let a =
    { W5_federation.Sync.platform = Platform.create (); provider_name = "pa" }
  in
  let b =
    { W5_federation.Sync.platform = Platform.create (); provider_name = "pb" }
  in
  (match
     Platform.signup a.W5_federation.Sync.platform ~user:"zoe" ~password:"pw"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match
     Platform.signup b.W5_federation.Sync.platform ~user:"zoe" ~password:"pw"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  match
    W5_federation.Sync.establish ~a ~b ~user:"zoe"
      ~files:[ "profile"; "friends" ] ()
  with
  | Ok link ->
      ignore (W5_federation.Sync.sync link);
      (link, a)
  | Error e -> failwith e

let sync_counter = ref 0

let bench_federation =
  Test.make_grouped ~name:"federation-sync"
    [
      Test.make ~name:"steady-state-round"
        (staged (fun () -> W5_federation.Sync.sync sync_link));
      Test.make ~name:"one-update-round"
        (staged (fun () ->
             incr sync_counter;
             let account =
               Platform.account_exn sync_side_a.W5_federation.Sync.platform
                 "zoe"
             in
             ignore
               (Platform.write_user_record
                  sync_side_a.W5_federation.Sync.platform account
                  ~file:"profile"
                  (W5_store.Record.of_fields
                     [ ("user", "zoe"); ("rev", string_of_int !sync_counter) ]));
             W5_federation.Sync.sync sync_link));
    ]

(* ------------------------------------------------------------------ *)
(* federation-faults: convergence cost vs message drop rate            *)
(* ------------------------------------------------------------------ *)

let faulty_link, faulty_side_a =
  let a =
    { W5_federation.Sync.platform = Platform.create (); provider_name = "fa" }
  in
  let b =
    { W5_federation.Sync.platform = Platform.create (); provider_name = "fb" }
  in
  List.iter
    (fun (side : W5_federation.Sync.side) ->
      match
        Platform.signup side.W5_federation.Sync.platform ~user:"zoe"
          ~password:"pw"
      with
      | Ok _ -> ()
      | Error e -> failwith e)
    [ a; b ];
  match
    W5_federation.Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile" ] ()
  with
  | Ok link ->
      ignore (W5_federation.Sync.sync link);
      (link, a)
  | Error e -> failwith e

let faulty_counter = ref 0

(* One measured unit: an edit on side A driven to convergence under a
   fresh seeded plan with [drops] message losses (no crashes — wall
   time under retries/backoff is the question here). The seed comes
   from a counter so every iteration faces a different but
   reproducible schedule. *)
let converge_under_drops ~drops () =
  incr faulty_counter;
  W5_federation.Sync.set_faults faulty_link
    (W5_fault.Fault.of_seed ~drops ~delays:0 ~duplicates:0 ~crashes:0
       ~seed:!faulty_counter ());
  let account =
    Platform.account_exn faulty_side_a.W5_federation.Sync.platform "zoe"
  in
  ignore
    (Platform.write_user_record faulty_side_a.W5_federation.Sync.platform
       account ~file:"profile"
       (W5_store.Record.of_fields
          [ ("user", "zoe"); ("rev", string_of_int !faulty_counter) ]));
  let rec go n =
    if n > 0 && not (W5_federation.Sync.converged faulty_link) then begin
      ignore (W5_federation.Sync.sync faulty_link);
      go (n - 1)
    end
  in
  go 10

let bench_federation_faults =
  Test.make_grouped ~name:"federation-faults"
    [
      Test.make ~name:"converge-drops-0"
        (staged (converge_under_drops ~drops:0));
      Test.make ~name:"converge-drops-2"
        (staged (converge_under_drops ~drops:2));
      Test.make ~name:"converge-drops-6"
        (staged (converge_under_drops ~drops:6));
    ]

(* ------------------------------------------------------------------ *)
(* portability: whole-account export (E19)                             *)
(* ------------------------------------------------------------------ *)

let takeout_account =
  Platform.account_exn on_society.W5_workload.Populate.platform on_u0_name

let bench_portability =
  Test.make_grouped ~name:"portability"
    [
      Test.make ~name:"export-bundle"
        (staged (fun () ->
             W5_federation.Migrate.export_bundle
               on_society.W5_workload.Populate.platform takeout_account));
      Test.make ~name:"encode-bundle"
        (staged
           (let bundle =
              match
                W5_federation.Migrate.export_bundle
                  on_society.W5_workload.Populate.platform takeout_account
              with
              | Ok b -> b
              | Error _ -> []
            in
            fun () -> W5_federation.Migrate.encode_bundle bundle));
    ]

(* ------------------------------------------------------------------ *)
(* syscall micro-costs under quota accounting (E7)                     *)
(* ------------------------------------------------------------------ *)

let syscall_ctx =
  let kernel = W5_os.Kernel.create () in
  let ctx = spawn_on kernel "bench" in
  (match
     W5_os.Syscall.create_file ctx "/bench-file" ~labels:Flow.bottom
       ~data:(String.make 256 'x')
   with
  | Ok () -> ()
  | Error _ -> assert false);
  ctx

let create_counter = ref 0

let bench_syscall =
  Test.make_grouped ~name:"syscall"
    [
      Test.make ~name:"file-exists"
        (staged (fun () -> W5_os.Syscall.file_exists syscall_ctx "/bench-file"));
      Test.make ~name:"read-taint-256B"
        (staged (fun () -> W5_os.Syscall.read_file_taint syscall_ctx "/bench-file"));
      Test.make ~name:"read-strict-256B"
        (staged (fun () -> W5_os.Syscall.read_file syscall_ctx "/bench-file"));
      Test.make ~name:"write-256B"
        (staged (fun () ->
             W5_os.Syscall.write_file syscall_ctx "/bench-file"
               ~data:(String.make 256 'y')));
      Test.make ~name:"create-unlink"
        (staged (fun () ->
             incr create_counter;
             let path = Printf.sprintf "/bench-tmp-%d" !create_counter in
             ignore
               (W5_os.Syscall.create_file syscall_ctx path ~labels:Flow.bottom
                  ~data:"x");
             W5_os.Syscall.unlink syscall_ctx path));
    ]

(* ------------------------------------------------------------------ *)
(* metrics-overhead: what instrumentation costs on the syscall path    *)
(* ------------------------------------------------------------------ *)

(* Three kernels running the identical read: registry on (the
   default), registry off (one branch per metric site), and registry
   on with the tracer also recording spans. *)
let obs_ctx_of kernel =
  let ctx = spawn_on kernel "bench" in
  (match
     W5_os.Syscall.create_file ctx "/bench-file" ~labels:Flow.bottom
       ~data:(String.make 256 'x')
   with
  | Ok () -> ()
  | Error _ -> assert false);
  ctx

let metered_ctx = obs_ctx_of (W5_os.Kernel.create ())

let unmetered_ctx =
  let kernel = W5_os.Kernel.create () in
  W5_obs.Metrics.set_enabled (W5_os.Kernel.metrics kernel) false;
  obs_ctx_of kernel

let traced_ctx =
  let kernel = W5_os.Kernel.create () in
  W5_obs.Tracer.set_enabled (W5_os.Kernel.tracer kernel) true;
  obs_ctx_of kernel

let obs_registry = W5_obs.Metrics.create ()

let obs_counter =
  W5_obs.Metrics.counter obs_registry "bench_counter" ~help:"bench"

let obs_histogram =
  W5_obs.Metrics.histogram obs_registry "bench_histogram" ~help:"bench"

let bench_metrics =
  Test.make_grouped ~name:"metrics-overhead"
    [
      Test.make ~name:"read-taint-metered"
        (staged (fun () -> W5_os.Syscall.read_file_taint metered_ctx "/bench-file"));
      Test.make ~name:"read-taint-unmetered"
        (staged (fun () ->
             W5_os.Syscall.read_file_taint unmetered_ctx "/bench-file"));
      Test.make ~name:"read-taint-traced"
        (staged (fun () -> W5_os.Syscall.read_file_taint traced_ctx "/bench-file"));
      Test.make ~name:"counter-inc"
        (staged (fun () ->
             W5_obs.Metrics.inc obs_counter ~labels:[ ("op", "bench") ]));
      Test.make ~name:"histogram-observe"
        (staged (fun () -> W5_obs.Metrics.observe obs_histogram 42));
    ]

(* ------------------------------------------------------------------ *)
(* client-filter (E9)                                                  *)
(* ------------------------------------------------------------------ *)

let page_clean =
  Html.page ~title:"clean"
    (String.concat ""
       (List.init 100 (fun i -> Html.element "p" (Printf.sprintf "para %d" i))))

let page_scripted =
  Html.page ~title:"evil"
    (String.concat ""
       (List.init 100 (fun i ->
            if i mod 10 = 0 then
              "<script>alert(" ^ string_of_int i ^ ")</script>"
            else Html.element "p" ~attrs:[ ("onclick", "x()") ] "text")))

let page_marked =
  Html.page ~title:"calendar"
    (String.concat ""
       (List.init 100 (fun i ->
            if i mod 3 = 0 then
              Declassifier.secret_span (Printf.sprintf "event %d" i)
            else Html.element "p" "free slot")))

let bench_filter =
  Test.make_grouped ~name:"client-filter"
    [
      Test.make ~name:"redact-marked-10KB"
        (staged (fun () -> Declassifier.redact_spans page_marked));
      Test.make ~name:"detect-clean-10KB"
        (staged (fun () -> Html.contains_script page_clean));
      Test.make ~name:"strip-clean-10KB"
        (staged (fun () -> Html.strip_scripts page_clean));
      Test.make ~name:"strip-scripted-10KB"
        (staged (fun () -> Html.strip_scripts page_scripted));
    ]

(* ------------------------------------------------------------------ *)
(* collaboration: groups and messaging                                 *)
(* ------------------------------------------------------------------ *)

let collab_platform, collab_group, collab_founder, collab_member =
  let platform = Platform.create () in
  let founder =
    match Platform.signup platform ~user:"founder" ~password:"pw" with
    | Ok a -> a
    | Error e -> failwith e
  in
  let member =
    match Platform.signup platform ~user:"member" ~password:"pw" with
    | Ok a -> a
    | Error e -> failwith e
  in
  let group =
    match Group.create platform ~founder ~name:"bench-circle" with
    | Ok g -> g
    | Error e -> failwith e
  in
  (match Group.add_member platform group ~user:"member" with
  | Ok () -> ()
  | Error e -> failwith e);
  List.iter
    (fun i ->
      match
        Group.post platform group ~author:founder
          ~id:(Printf.sprintf "seed%02d" i)
          ~body:"seeded post"
      with
      | Ok () -> ()
      | Error _ -> assert false)
    (List.init 20 Fun.id);
  (platform, group, founder, member)

let group_post_counter = ref 0

let bench_collab =
  (* read and caps lookups run before the post bench floods the
     directory, so "20 posts" stays honest *)
  Test.make_grouped ~name:"collaboration"
    [
      Test.make ~name:"member-caps-lookup"
        (staged (fun () -> Group.member_caps collab_platform ~user:"member"));
      Test.make ~name:"group-read-20-posts"
        (staged (fun () ->
             Group.read_posts collab_platform collab_group
               ~reader:collab_member));
      Test.make ~name:"group-post"
        (staged (fun () ->
             incr group_post_counter;
             Group.post collab_platform collab_group ~author:collab_founder
               ~id:(Printf.sprintf "p%06d" !group_post_counter)
               ~body:"benchmark post"));
    ]

(* ------------------------------------------------------------------ *)
(* rank-ablation: HITS vs PageRank (DESIGN Â§5)                          *)
(* ------------------------------------------------------------------ *)

let bench_rank_ablation =
  Test.make_grouped ~name:"rank-ablation"
    [
      Test.make ~name:"hits-100"
        (staged (fun () -> W5_rank.Hits.compute graph_100));
      Test.make ~name:"hits-1000"
        (staged (fun () -> W5_rank.Hits.compute graph_1000));
    ]

(* ------------------------------------------------------------------ *)
(* durability: filesystem snapshot / restore                           *)
(* ------------------------------------------------------------------ *)

let durability_fs = W5_os.Kernel.fs (Platform.kernel on_society.W5_workload.Populate.platform)
let durability_image = W5_os.Fs.snapshot durability_fs

let bench_durability =
  Test.make_grouped ~name:"durability"
    [
      Test.make ~name:"snapshot-populated-fs"
        (staged (fun () -> W5_os.Fs.snapshot durability_fs));
      Test.make ~name:"restore-populated-fs"
        (staged (fun () -> W5_os.Fs.restore_into durability_fs durability_image));
    ]

(* ------------------------------------------------------------------ *)
(* scaling: trace replay vs society size                               *)
(* ------------------------------------------------------------------ *)

let scaling_societies =
  List.map
    (fun n ->
      ( n,
        W5_workload.Populate.build ~seed:23 ~users:n ~friends_per_user:3
          ~photos_per_user:1 ~blog_posts_per_user:1 () ))
    [ 5; 20 ]

let bench_scaling =
  Test.make_grouped ~name:"scaling"
    (List.map
       (fun (n, society) ->
         let rng = W5_workload.Rng.create ~seed:77 in
         let actions =
           W5_workload.Trace.generate rng ~society
             ~mix:W5_workload.Trace.read_heavy ~length:50
         in
         Test.make
           ~name:(Printf.sprintf "replay-50-actions-%d-users" n)
           (staged (fun () -> W5_workload.Trace.replay society actions)))
       scaling_societies)

(* ------------------------------------------------------------------ *)
(* provenance: graph reconstruction cost vs audit-log size             *)
(* ------------------------------------------------------------------ *)

(* A synthetic but representative audit log: a bounded population of
   processes, paths and tags generating the same event mix a provider
   sees (taints, checked flows, object labelings, declassifications,
   spawns, a denial and an export attempt per "request"). Sizes are
   the retained entry counts the graph builder must chew through. *)
let synthetic_audit_log n =
  let log = W5_os.Audit.create () in
  let n_tags = 16 and n_paths = 64 and n_pids = 32 in
  let tags =
    Array.init n_tags (fun i ->
        Tag.fresh ~name:(Printf.sprintf "bench.tag%02d" i) Tag.Secrecy)
  in
  let label i = Label.singleton tags.(i mod n_tags) in
  let labels i = Flow.make ~secrecy:(label i) () in
  let path i = Printf.sprintf "/users/u%02d/file%02d" (i mod 8) (i mod n_paths) in
  let pid i = 1 + (i mod n_pids) in
  let record i ev = W5_os.Audit.record log ~tick:i ~pid:(pid i) ev in
  for i = 0 to n - 1 do
    match i mod 8 with
    | 0 ->
        record i
          (W5_os.Audit.Spawned
             { child = pid (i + 1); name = Printf.sprintf "app%02d" (i mod 12);
               labels = labels i })
    | 1 | 2 ->
        record i
          (W5_os.Audit.Tainted
             { op = "fs.read_taint"; subject = W5_os.Audit.File (path i);
               added = label i })
    | 3 ->
        record i
          (W5_os.Audit.Object_labeled
             { op = "fs.create"; path = path i; labels = labels i })
    | 4 ->
        record i
          (W5_os.Audit.Flow_checked
             { op = "fs.write"; src = labels i; dst = labels (i + 1);
               decision = Error (Flow.Secrecy_violation (label i));
               subject = W5_os.Audit.File (path i) })
    | 5 ->
        record i
          (W5_os.Audit.Declassified
             { tag = tags.(i mod n_tags); context = "declass/bench/friends" })
    | 6 ->
        record i
          (W5_os.Audit.Export_attempted
             { destination = "viewer's browser"; labels = labels i;
               decision = (if i mod 16 = 6 then
                             Error (Flow.Secrecy_violation (label i))
                           else Ok ()) })
    | _ ->
        record i
          (W5_os.Audit.Tainted
             { op = "ipc.recv"; subject = W5_os.Audit.Peer (pid (i + 3));
               added = label (i + 1) })
  done;
  log

let provenance_logs =
  List.map (fun n -> (n, synthetic_audit_log n)) [ 1_000; 10_000; 100_000 ]

(* explain latency: resolve the last denial of the largest log against
   a prebuilt graph — the interactive `w5 explain` path. *)
let provenance_big_log = List.assoc 100_000 provenance_logs
let provenance_big_graph = W5_os.Explain.graph provenance_big_log

let bench_provenance =
  Test.make_grouped ~name:"provenance"
    (List.map
       (fun (n, log) ->
         Test.make
           ~name:(Printf.sprintf "graph-build-%dk-entries" (n / 1000))
           (staged (fun () -> W5_os.Explain.graph log)))
       provenance_logs
    @ [
        Test.make ~name:"explain-denial-100k"
          (staged (fun () ->
               match
                 W5_os.Explain.find_denial provenance_big_log ()
               with
               | None -> failwith "bench: no denial in synthetic log"
               | Some entry ->
                   W5_os.Explain.explain provenance_big_graph entry));
      ])

(* ------------------------------------------------------------------ *)
(* vet: whole-platform static analysis time vs. ecosystem size         *)
(* ------------------------------------------------------------------ *)

let vet_platform modules =
  let platform = Platform.create () in
  List.iter
    (fun user ->
      match Platform.signup platform ~user ~password:"pw" with
      | Error e -> failwith ("bench: vet signup: " ^ e)
      | Ok account ->
          ignore
            (Declassifier.install_and_authorize platform ~account
               ~name:"friends" Declassifier.friends_only))
    [ "veta"; "vetb"; "vetc"; "vetd" ];
  ignore
    (W5_workload.Populate.fill_dependency_graph platform ~modules
       ~imports_per_module:3);
  platform

let vet_platforms = List.map (fun n -> (n, vet_platform n)) [ 10; 100; 1000 ]

let bench_vet =
  Test.make_grouped ~name:"vet"
    (List.map
       (fun (n, platform) ->
         Test.make
           ~name:(Printf.sprintf "capture-analyze-%d-apps" n)
           (staged (fun () ->
                W5_analysis.Vet.analyze (W5_analysis.Static.capture platform))))
       vet_platforms)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let groups =
  [
    bench_fig1;
    bench_e2e;
    bench_label_ops;
    bench_perimeter;
    bench_declassifier;
    bench_query;
    bench_query_index;
    bench_pagerank;
    bench_rank_ablation;
    bench_collab;
    bench_durability;
    bench_scaling;
    bench_federation;
    bench_federation_faults;
    bench_portability;
    bench_syscall;
    bench_metrics;
    bench_filter;
    bench_provenance;
    bench_vet;
  ]

(* --smoke: one tiny iteration per group, for CI — proves every bench
   fixture and body still runs, without measuring anything. *)
let smoke = Array.exists (( = ) "--smoke") Sys.argv

(* --only NAME: run a single group (CI smokes the expensive groups
   individually; fixtures still build — they are module-level). *)
let only =
  let rec find = function
    | "--only" :: name :: _ -> Some name
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let groups =
  match only with
  | None -> groups
  | Some name -> List.filter (fun g -> Test.name g = name) groups

let run_and_analyze test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:1 ~quota:(Time.second 0.001) ~kde:None
        ~stabilize:false ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
        ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  Analyze.all ols instance raw

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> None
  | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Some t
      | Some [] | None -> None)

let pp_ns fmt t =
  if t > 1e6 then Format.fprintf fmt "%10.3f ms" (t /. 1e6)
  else if t > 1e3 then Format.fprintf fmt "%10.3f us" (t /. 1e3)
  else Format.fprintf fmt "%10.1f ns" t

let () =
  Printf.printf "W5 benchmark harness (one group per DESIGN.md experiment)\n";
  Printf.printf "==========================================================\n%!";
  let all_results = Hashtbl.create 128 in
  List.iter
    (fun group ->
      Printf.printf "\n[%s]\n%!" (Test.name group);
      let results = run_and_analyze group in
      (* stable presentation: the declared test order *)
      List.iter
        (fun name ->
          match estimate results name with
          | Some t ->
              Hashtbl.replace all_results name t;
              Format.printf "  %-45s %a/run@." name pp_ns t
          | None -> Format.printf "  %-45s (no estimate)@." name)
        (Test.names group))
    groups;

  (* the "shape" summary: who wins and by what factor *)
  let ratio a b =
    match (Hashtbl.find_opt all_results a, Hashtbl.find_opt all_results b) with
    | Some x, Some y when y > 0.0 -> Some (x /. y)
    | _ -> None
  in
  let print_ratio label a b =
    match ratio a b with
    | Some r -> Printf.printf "  %-52s %6.2fx\n" label r
    | None -> Printf.printf "  %-52s (n/a)\n" label
  in
  Printf.printf "\nShape summary (cf. EXPERIMENTS.md)\n";
  Printf.printf "----------------------------------\n";
  print_ratio "P1  DIFC enforcement overhead (on/off, e2e request)"
    "e2e-request/own-profile-enforcing"
    "e2e-request/own-profile-no-enforcement";
  print_ratio "F2/F1  W5 request vs silo lookup"
    "e2e-request/own-profile-enforcing" "fig1-baseline/get";
  print_ratio "E2  declassified friend view vs own view"
    "e2e-request/friend-view-via-declassifier"
    "e2e-request/own-profile-enforcing";
  print_ratio "E2  gate invocation vs inline logic"
    "declassifier/logic-via-gate" "declassifier/logic-inline";
  print_ratio "E8  safe query vs leaky baseline (1000 rows)"
    "query-taint/safe-select-1000" "query-taint/leaky-select-1000";
  print_ratio "IDX scan vs indexed equality select (10k rows)"
    "query-index/scan-eq-10000" "query-index/indexed-eq-10000";
  print_ratio "IDX scan vs indexed range select (10k rows)"
    "query-index/scan-range-10000" "query-index/indexed-range-10000";
  print_ratio "E5  pagerank scaling (1000 vs 100 nodes)"
    "pagerank/compute-1000" "pagerank/compute-100";
  print_ratio "E5  hits vs pagerank (1000 nodes)" "rank-ablation/hits-1000"
    "pagerank/compute-1000";
  print_ratio "scaling: 20-user vs 5-user society (50-action replay)"
    "scaling/replay-50-actions-20-users" "scaling/replay-50-actions-5-users";
  print_ratio "E6  one-update sync vs steady state"
    "federation-sync/one-update-round" "federation-sync/steady-state-round";
  print_ratio "label size 64 vs 1 (set union)" "label-ops/set-union-64"
    "label-ops/set-union-1";
  print_ratio "label repr: set vs sorted array (union, 64 tags)"
    "label-ops/set-union-64" "label-ops/array-union-64";
  print_ratio "OBS metrics overhead (metered/unmetered tainting read)"
    "metrics-overhead/read-taint-metered"
    "metrics-overhead/read-taint-unmetered";
  print_ratio "OBS tracing overhead (traced/metered tainting read)"
    "metrics-overhead/read-taint-traced"
    "metrics-overhead/read-taint-metered";
  report_rows_scanned ();
  Printf.printf "\nbench: done\n"
