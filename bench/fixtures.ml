(* Shared bench fixtures, built lazily.

   Every fixture is behind [lazy] and an accessor function: a group
   only pays for the worlds it actually touches, so `--only vet` no
   longer builds three societies, two federation meshes, and 111k
   synthetic audit entries first. CI smoke runs a few groups per job
   and this is most of their wall-clock.

   Fixtures shared by several groups live here exactly once
   (societies, the seeded query/index kernels, sync pair builder,
   dependency graphs) — the duplication these hoist used to be spread
   over the group sections of main.ml. *)

open W5_difc
open W5_platform

(* ---- societies and logged-in clients ---- *)

let society ~enforcing =
  W5_workload.Populate.build ~seed:17 ~enforcing ~users:10 ~friends_per_user:3
    ~photos_per_user:2 ~blog_posts_per_user:1 ()

let on_society_l = lazy (society ~enforcing:true)
let off_society_l = lazy (society ~enforcing:false)
let on_society () = Lazy.force on_society_l
let off_society () = Lazy.force off_society_l

let logged_in (s : W5_workload.Populate.society) user =
  W5_workload.Populate.login s user

let on_u0_name () = List.hd (on_society ()).W5_workload.Populate.users
let on_u1_name () = List.nth (on_society ()).W5_workload.Populate.users 1

let on_u0_l = lazy (logged_in (on_society ()) (on_u0_name ()))
let on_u0 () = Lazy.force on_u0_l

let off_u0_l =
  lazy
    (logged_in (off_society ())
       (List.hd (off_society ()).W5_workload.Populate.users))

let off_u0 () = Lazy.force off_u0_l

(* a viewer who is guaranteed to be u1's friend, and one who is not *)
let friends_of_u1_l =
  lazy
    (let platform = (on_society ()).W5_workload.Populate.platform in
     let account = Platform.account_exn platform (on_u1_name ()) in
     match Platform.read_user_record platform account ~file:"friends" with
     | Ok r -> (
         let friends = W5_store.Record.get_list r "friends" in
         let everyone = (on_society ()).W5_workload.Populate.users in
         let non_friend =
           List.find
             (fun u -> u <> on_u1_name () && not (List.mem u friends))
             (everyone @ [ "nobody" ])
         in
         match friends with
         | f :: _ -> (f, non_friend)
         | [] -> (on_u0_name (), non_friend))
     | Error _ -> (on_u0_name (), on_u0_name ()))

let friend_of_u1 () = fst (Lazy.force friends_of_u1_l)
let non_friend_of_u1 () = snd (Lazy.force friends_of_u1_l)

let friend_client_l = lazy (logged_in (on_society ()) (friend_of_u1 ()))
let friend_client () = Lazy.force friend_client_l

let stranger_client_l =
  lazy
    (if non_friend_of_u1 () = "nobody" then friend_client ()
     else logged_in (on_society ()) (non_friend_of_u1 ()))

let stranger_client () = Lazy.force stranger_client_l

(* ---- the silo baseline site ---- *)

let silo_l =
  lazy
    (let open W5_apps.Silo_baseline in
     let site = create_site "silo" in
     List.iter
       (fun i ->
         set_data site ~user:"amy"
           ~key:(Printf.sprintf "k%02d" i)
           ~value:(String.make 32 'v'))
       (List.init 10 Fun.id);
     site)

let silo () = Lazy.force silo_l

(* ---- kernels with bodies ---- *)

let spawn_on kernel name =
  match
    W5_os.Kernel.spawn kernel ~name
      ~owner:(W5_os.Kernel.kernel_principal kernel)
      ~labels:Flow.bottom ~caps:Capability.Set.empty
      ~limits:W5_os.Resource.unlimited (fun _ -> ())
  with
  | Ok proc -> { W5_os.Kernel.kernel; proc }
  | Error _ -> assert false

(* a kernel holding one 256-byte file, for syscall-level groups *)
let file_ctx () =
  let kernel = W5_os.Kernel.create () in
  let ctx = spawn_on kernel "bench" in
  (match
     W5_os.Syscall.create_file ctx "/bench-file" ~labels:Flow.bottom
       ~data:(String.make 256 'x')
   with
  | Ok () -> ()
  | Error _ -> assert false);
  ctx

(* ---- seeded store collections (query-taint) ---- *)

let query_sizes = [ 10; 100; 1000 ]

let query_kernel_l =
  lazy
    (let kernel = W5_os.Kernel.create () in
     let seed = spawn_on kernel "seed" in
     (match W5_store.Obj_store.init seed with
     | Ok () -> ()
     | Error _ -> assert false);
     (* one collection per size, with a tenth of the rows secret *)
     List.iter
       (fun n ->
         let collection = Printf.sprintf "c%d" n in
         (match
            W5_store.Obj_store.create_collection seed collection
              ~labels:Flow.bottom
          with
         | Ok () -> ()
         | Error _ -> assert false);
         List.iter
           (fun i ->
             let labels =
               if i mod 10 = 0 then
                 Flow.make
                   ~secrecy:
                     (Label.singleton
                        (Tag.fresh
                           ~name:(Printf.sprintf "row%d-%d" n i)
                           Tag.Secrecy))
                   ()
               else Flow.bottom
             in
             match
               W5_store.Obj_store.put seed ~collection
                 ~id:(Printf.sprintf "r%04d" i)
                 ~labels
                 (W5_store.Record.of_fields
                    [ ("from", (if i mod 3 = 0 then "bob" else "carol")) ])
             with
             | Ok () -> ()
             | Error _ -> assert false)
           (List.init n Fun.id))
       query_sizes;
     kernel)

let query_kernel () = Lazy.force query_kernel_l

(* ---- seeded indexed collections (query-index) ---- *)

let index_sizes = [ 10; 100; 1000; 10000 ]
let index_collection n = Printf.sprintf "qi%d" n

let index_kernel_l =
  lazy
    (let kernel = W5_os.Kernel.create () in
     let seed = spawn_on kernel "seed" in
     (match W5_store.Obj_store.init seed with
     | Ok () -> ()
     | Error _ -> assert false);
     List.iter
       (fun n ->
         let collection = index_collection n in
         (match
            W5_store.Obj_store.create_collection seed collection
              ~labels:Flow.bottom
          with
         | Ok () -> ()
         | Error _ -> assert false);
         W5_store.Index.declare seed ~collection ~field:"u"
           W5_store.Index.Equality;
         W5_store.Index.declare seed ~collection ~field:"score"
           W5_store.Index.Int_order;
         List.iter
           (fun i ->
             match
               W5_store.Obj_store.put seed ~collection
                 ~id:(Printf.sprintf "r%05d" i)
                 ~labels:Flow.bottom
                 (W5_store.Record.of_fields
                    [
                      ("u", Printf.sprintf "u%d" (i mod max 1 (n / 10)));
                      ("score", string_of_int i);
                    ])
             with
             | Ok () -> ()
             | Error _ -> assert false)
           (List.init n Fun.id))
       index_sizes;
     kernel)

let index_kernel () = Lazy.force index_kernel_l

(* ---- dependency graphs (pagerank, rank-ablation) ---- *)

let graph_of_size n =
  let rng = W5_workload.Rng.create ~seed:(n + 1) in
  let g = W5_rank.Depgraph.create () in
  List.iter
    (fun i ->
      let node = Printf.sprintf "m%d" i in
      W5_rank.Depgraph.add_node g node;
      if i > 0 then
        List.iter
          (fun _ ->
            let j = W5_workload.Rng.int rng i in
            let j = min j (W5_workload.Rng.int rng i) in
            W5_rank.Depgraph.add_edge g ~src:node ~dst:(Printf.sprintf "m%d" j))
          (List.init (min 3 i) Fun.id))
    (List.init n Fun.id);
  g

let graph_100_l = lazy (graph_of_size 100)
let graph_1000_l = lazy (graph_of_size 1000)
let graph_100 () = Lazy.force graph_100_l
let graph_1000 () = Lazy.force graph_1000_l

(* ---- federation links ---- *)

(* Two one-user providers joined by a converged link — the shared
   starting point of both federation groups. *)
let make_sync_pair ~prefix ~files =
  let side name =
    { W5_federation.Sync.platform = Platform.create ();
      provider_name = prefix ^ name }
  in
  let a = side "a" and b = side "b" in
  List.iter
    (fun (side : W5_federation.Sync.side) ->
      match
        Platform.signup side.W5_federation.Sync.platform ~user:"zoe"
          ~password:"pw"
      with
      | Ok _ -> ()
      | Error e -> failwith e)
    [ a; b ];
  match W5_federation.Sync.establish ~a ~b ~user:"zoe" ~files () with
  | Ok link ->
      ignore (W5_federation.Sync.sync link);
      (link, a)
  | Error e -> failwith e

let sync_pair_l = lazy (make_sync_pair ~prefix:"p" ~files:[ "profile"; "friends" ])
let sync_link () = fst (Lazy.force sync_pair_l)
let sync_side_a () = snd (Lazy.force sync_pair_l)

let faulty_pair_l = lazy (make_sync_pair ~prefix:"f" ~files:[ "profile" ])
let faulty_link () = fst (Lazy.force faulty_pair_l)
let faulty_side_a () = snd (Lazy.force faulty_pair_l)

(* ---- collaboration ---- *)

let collab_l =
  lazy
    (let platform = Platform.create () in
     let founder =
       match Platform.signup platform ~user:"founder" ~password:"pw" with
       | Ok a -> a
       | Error e -> failwith e
     in
     let member =
       match Platform.signup platform ~user:"member" ~password:"pw" with
       | Ok a -> a
       | Error e -> failwith e
     in
     let group =
       match Group.create platform ~founder ~name:"bench-circle" with
       | Ok g -> g
       | Error e -> failwith e
     in
     (match Group.add_member platform group ~user:"member" with
     | Ok () -> ()
     | Error e -> failwith e);
     List.iter
       (fun i ->
         match
           Group.post platform group ~author:founder
             ~id:(Printf.sprintf "seed%02d" i)
             ~body:"seeded post"
         with
         | Ok () -> ()
         | Error _ -> assert false)
       (List.init 20 Fun.id);
     (platform, group, founder, member))

let collab_platform () = let p, _, _, _ = Lazy.force collab_l in p
let collab_group () = let _, g, _, _ = Lazy.force collab_l in g
let collab_founder () = let _, _, f, _ = Lazy.force collab_l in f
let collab_member () = let _, _, _, m = Lazy.force collab_l in m

(* ---- scaling societies ---- *)

let scaling_societies_l =
  lazy
    (List.map
       (fun n ->
         ( n,
           W5_workload.Populate.build ~seed:23 ~users:n ~friends_per_user:3
             ~photos_per_user:1 ~blog_posts_per_user:1 () ))
       [ 5; 20 ])

let scaling_societies () = Lazy.force scaling_societies_l

(* ---- synthetic audit logs (provenance) ---- *)

(* A synthetic but representative audit log: a bounded population of
   processes, paths and tags generating the same event mix a provider
   sees (taints, checked flows, object labelings, declassifications,
   spawns, a denial and an export attempt per "request"). Sizes are
   the retained entry counts the graph builder must chew through. *)
let synthetic_audit_log n =
  let log = W5_os.Audit.create () in
  let n_tags = 16 and n_paths = 64 and n_pids = 32 in
  let tags =
    Array.init n_tags (fun i ->
        Tag.fresh ~name:(Printf.sprintf "bench.tag%02d" i) Tag.Secrecy)
  in
  let label i = Label.singleton tags.(i mod n_tags) in
  let labels i = Flow.make ~secrecy:(label i) () in
  let path i = Printf.sprintf "/users/u%02d/file%02d" (i mod 8) (i mod n_paths) in
  let pid i = 1 + (i mod n_pids) in
  let record i ev = W5_os.Audit.record log ~tick:i ~pid:(pid i) ev in
  for i = 0 to n - 1 do
    match i mod 8 with
    | 0 ->
        record i
          (W5_os.Audit.Spawned
             { child = pid (i + 1); name = Printf.sprintf "app%02d" (i mod 12);
               labels = labels i })
    | 1 | 2 ->
        record i
          (W5_os.Audit.Tainted
             { op = "fs.read_taint"; subject = W5_os.Audit.File (path i);
               added = label i })
    | 3 ->
        record i
          (W5_os.Audit.Object_labeled
             { op = "fs.create"; path = path i; labels = labels i })
    | 4 ->
        record i
          (W5_os.Audit.Flow_checked
             { op = "fs.write"; src = labels i; dst = labels (i + 1);
               decision = Error (Flow.Secrecy_violation (label i));
               subject = W5_os.Audit.File (path i) })
    | 5 ->
        record i
          (W5_os.Audit.Declassified
             { tag = tags.(i mod n_tags); context = "declass/bench/friends" })
    | 6 ->
        record i
          (W5_os.Audit.Export_attempted
             { destination = "viewer's browser"; labels = labels i;
               decision = (if i mod 16 = 6 then
                             Error (Flow.Secrecy_violation (label i))
                           else Ok ()) })
    | _ ->
        record i
          (W5_os.Audit.Tainted
             { op = "ipc.recv"; subject = W5_os.Audit.Peer (pid (i + 3));
               added = label (i + 1) })
  done;
  log

let provenance_logs_l =
  lazy (List.map (fun n -> (n, synthetic_audit_log n)) [ 1_000; 10_000; 100_000 ])

let provenance_logs () = Lazy.force provenance_logs_l

(* explain latency works over a prebuilt graph of the largest log —
   the interactive `w5 explain` path *)
let provenance_big_log () = List.assoc 100_000 (provenance_logs ())
let provenance_big_graph_l = lazy (W5_os.Explain.graph (provenance_big_log ()))
let provenance_big_graph () = Lazy.force provenance_big_graph_l

(* ---- vet ecosystems ---- *)

let vet_platform modules =
  let platform = Platform.create () in
  List.iter
    (fun user ->
      match Platform.signup platform ~user ~password:"pw" with
      | Error e -> failwith ("bench: vet signup: " ^ e)
      | Ok account ->
          ignore
            (Declassifier.install_and_authorize platform ~account
               ~name:"friends" Declassifier.friends_only))
    [ "veta"; "vetb"; "vetc"; "vetd" ];
  ignore
    (W5_workload.Populate.fill_dependency_graph platform ~modules
       ~imports_per_module:3);
  platform

let vet_platforms_l =
  lazy (List.map (fun n -> (n, vet_platform n)) [ 10; 100; 1000 ])

let vet_platforms () = Lazy.force vet_platforms_l

(* ---- vet-concurrency: interference model and a replayable soak log ---- *)

let interfere_static_l =
  lazy
    (let society = W5_workload.Populate.build_showcase ~seed:7 ~users:8 () in
     W5_analysis.Static.capture society.W5_workload.Populate.platform)

let interfere_static () = Lazy.force interfere_static_l

let interfere_model_l =
  lazy (W5_analysis.Interfere.model_of_static (interfere_static ()))

let interfere_model () = Lazy.force interfere_model_l

(* a finished interleaved run whose audit log the differential
   replay (`Interfere.fold_audit`) folds over *)
let interfere_soak_log_l =
  lazy
    (let cfg =
       {
         W5_workload.Soak.default_config with
         W5_workload.Soak.seed = 11;
         users = 8;
         requests = 120;
         waves = 2;
       }
     in
     let society, _ = W5_workload.Soak.run cfg in
     W5_os.Kernel.audit
       (Platform.kernel society.W5_workload.Populate.platform))

let interfere_soak_log () = Lazy.force interfere_soak_log_l

(* ---- trace-health ---- *)

(* Two converged pairs distinguished only by whether their kernels
   trace: the delta between their steady-state rounds IS the
   context-propagation overhead. *)
let traced_pair_l =
  lazy
    (let link, a = make_sync_pair ~prefix:"tt" ~files:[ "profile" ] in
     let sa, sb = W5_federation.Sync.sides link in
     List.iter
       (fun (side : W5_federation.Sync.side) ->
         W5_obs.Tracer.set_enabled
           (W5_os.Kernel.tracer
              (Platform.kernel side.W5_federation.Sync.platform))
           true)
       [ sa; sb ];
     (link, a))

let traced_link () = fst (Lazy.force traced_pair_l)

let untraced_pair_l = lazy (make_sync_pair ~prefix:"tu" ~files:[ "profile" ])
let untraced_link () = fst (Lazy.force untraced_pair_l)

(* A synthetic two-provider forest for merge scaling: a third of the
   spans are home roots, a third their local children, a third remote
   continuations carrying contexts back at the home roots — every
   merge pass reattaches [n/3] subtrees over an [n]-span index. *)
let synthetic_trace n =
  let open W5_obs in
  let third = max 1 (n / 3) in
  let home =
    List.init third (fun i ->
        let root =
          Span.make ~id:(2 * i + 1) ~parent:None ~name:"sync.round"
            ~fields:[ ("peer", "remote") ] ~start_tick:(4 * i)
        in
        let child =
          Span.make ~id:(2 * i + 2)
            ~parent:(Some (2 * i + 1))
            ~name:"sync.export" ~fields:[] ~start_tick:(4 * i + 1)
        in
        Span.finish child ~tick:(4 * i + 2);
        Span.add_child root child;
        Span.finish root ~tick:(4 * i + 3);
        root)
  in
  let remote =
    List.init third (fun i ->
        let ctx =
          {
            Trace_context.trace_origin = "home";
            trace_root = 2 * i + 1;
            parent_origin = "home";
            parent_span = 2 * i + 1;
            origin_tick = 4 * i + 1;
          }
        in
        let span =
          Span.make ~id:(i + 1) ~parent:None ~name:"sync.apply"
            ~fields:(Trace_context.to_fields ctx)
            ~start_tick:i
        in
        Span.finish span ~tick:(i + 1);
        span)
  in
  [ ("home", home); ("remote", remote) ]

let synthetic_trace_1k_l = lazy (synthetic_trace 1_000)
let synthetic_trace_10k_l = lazy (synthetic_trace 10_000)
let synthetic_trace_1k () = Lazy.force synthetic_trace_1k_l
let synthetic_trace_10k () = Lazy.force synthetic_trace_10k_l

(* A loaded health model: 10x10 observer/peer mesh, 50 rounds each —
   the rollup cost `w5 health` pays per render. *)
let health_loaded_l =
  lazy
    (let h = W5_obs.Health.create ~window:4096 () in
     for o = 0 to 9 do
       for p = 0 to 9 do
         if o <> p then
           for round = 1 to 50 do
             W5_obs.Health.observe_round h
               ~observer:(Printf.sprintf "prov%02d" o)
               ~peer:(Printf.sprintf "prov%02d" p)
               ~tick:(round * 7) ~ok:true
               ~retries:(round mod 3)
               ~faults:(if round mod 5 = 0 then 1 else 0)
               ~timed_out:false ~recovered:0
           done
       done
     done;
     h)

let health_loaded () = Lazy.force health_loaded_l
