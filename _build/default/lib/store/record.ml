type t = (string * string) list

let empty = []
let of_fields fields = fields
let fields r = r
let get r key = List.assoc_opt key r
let get_or r key ~default = Option.value (get r key) ~default

let set r key value =
  let rec replace = function
    | [] -> [ (key, value) ]
    | (k, _) :: rest when k = key -> (key, value) :: rest
    | binding :: rest -> binding :: replace rest
  in
  replace r

let remove r key = List.filter (fun (k, _) -> k <> key) r
let mem r key = List.mem_assoc key r
let keys r = List.map fst r
let cardinal = List.length
let equal = ( = )
let get_int r key = Option.bind (get r key) int_of_string_opt
let set_int r key v = set r key (string_of_int v)

let get_list r key =
  match get r key with
  | None | Some "" -> []
  | Some s -> String.split_on_char ',' s

let set_list r key vs = set r key (String.concat "," vs)

(* Percent-escape the three characters that would break the
   line-oriented encoding. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '=' -> Buffer.add_string buf "%3d"
      | '\n' -> Buffer.add_string buf "%0a"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then Error "truncated escape"
      else
        match String.sub s (i + 1) 2 with
        | "25" ->
            Buffer.add_char buf '%';
            go (i + 3)
        | "3d" ->
            Buffer.add_char buf '=';
            go (i + 3)
        | "0a" ->
            Buffer.add_char buf '\n';
            go (i + 3)
        | esc -> Error ("unknown escape %" ^ esc)
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let encode r =
  String.concat "\n"
    (List.map (fun (k, v) -> escape k ^ "=" ^ escape v) r)

let decode s =
  if s = "" then Ok []
  else
    let lines = String.split_on_char '\n' s in
    let decode_line line =
      match String.index_opt line '=' with
      | None -> Error ("missing '=' in line: " ^ line)
      | Some i -> (
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match (unescape k, unescape v) with
          | Ok k, Ok v -> Ok (k, v)
          | Error e, _ | _, Error e -> Error e)
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          match decode_line line with
          | Ok binding -> go (binding :: acc) rest
          | Error _ as e -> e)
    in
    go [] lines

let pp fmt r =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s=%S" k v))
    r
