(** The platform's open record format.

    §3.2 of the paper worries about "anti-social" applications that
    entrench themselves by storing user data in proprietary formats.
    W5's editorial answer is a conventional, self-describing format
    that every honest application uses: an ordered list of string
    fields with a line-oriented, escaped, canonical encoding. Any
    application (and any editor auditing one) can decode any record.

    Encoding: one [key=value] line per field; ['%'], ['='] and
    newlines inside keys or values are percent-escaped, so decoding is
    unambiguous and round-trips exactly. *)

type t

val empty : t
val of_fields : (string * string) list -> t
val fields : t -> (string * string) list
val get : t -> string -> string option
val get_or : t -> string -> default:string -> string
val set : t -> string -> string -> t
(** Replaces the first binding of the key (or appends). *)

val remove : t -> string -> t
val mem : t -> string -> bool
val keys : t -> string list
val cardinal : t -> int
val equal : t -> t -> bool

val get_int : t -> string -> int option
val set_int : t -> string -> int -> t
val get_list : t -> string -> string list
(** A field holding a [','ered] list; absent field is the empty list. *)

val set_list : t -> string -> string list -> t

val encode : t -> string
val decode : string -> (t, string) result
(** [decode (encode r) = Ok r] for every [r]; malformed input yields a
    description of the first bad line. *)

val pp : Format.formatter -> t -> unit
