(** The covert-channel-safe query engine.

    §3.5 of the paper notes that "the SQL interface to databases can
    leak information implicitly and thus needs to be replaced under
    W5". The leak is through result {e shape}: whether a row appears
    in (or is absent from) a result tells the querier something about
    data it may not be tainted by.

    The replacement rule implemented here: a query taints the caller
    with the labels of {b every row scanned}, not just the rows
    returned. Absence then carries no exploitable signal — by the time
    the caller learns the shape, it is already tainted by everything
    that shaped it and cannot export the knowledge.

    {!select_leaky} implements the classic (unsafe) semantics — skip
    rows the caller cannot read — and exists only as the baseline arm
    of experiment E8 and its ablation bench.

    Every scanned row also costs CPU quota, so a malicious query
    cannot monopolize the database (§3.5 "resource allocation"): it
    dies by quota instead. *)

open W5_os

type id = string
type predicate = Record.t -> bool

val always : predicate
val field_equals : string -> string -> predicate
val field_contains : string -> string -> predicate
(** Substring match on the field's value; absent field never matches. *)

val field_int_at_least : string -> int -> predicate
val has_field : string -> predicate
val ( &&& ) : predicate -> predicate -> predicate
val ( ||| ) : predicate -> predicate -> predicate
val not_ : predicate -> predicate

val select :
  ?limit:int -> Kernel.ctx -> collection:string -> where:predicate ->
  ((id * Record.t) list, Os_error.t) result
(** Safe semantics: scan the whole collection, taint the caller with
    the join of every row's labels, return decoded matches (sorted by
    id). Rows that fail to decode are skipped.

    [limit] truncates the {e result}, never the {e scan}: stopping
    early would make the taint depend on which rows matched — exactly
    the shape channel this engine exists to close. Pagination costs a
    full scan, by design. *)

val select_leaky :
  Kernel.ctx -> collection:string -> where:predicate ->
  ((id * Record.t) list, Os_error.t) result
(** Unsafe baseline: strict reads, silently skipping rows the caller
    may not see. Result shape leaks. Kept for experiment E8 only. *)

val count :
  Kernel.ctx -> collection:string -> where:predicate ->
  (int, Os_error.t) result
(** [List.length] of {!select}, with the same taint semantics. *)

val fold :
  Kernel.ctx -> collection:string -> init:'a ->
  f:('a -> id -> Record.t -> 'a) -> ('a, Os_error.t) result
(** Safe full-collection fold (taints like {!select}). *)
