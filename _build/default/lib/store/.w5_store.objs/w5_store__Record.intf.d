lib/store/record.mli: Format
