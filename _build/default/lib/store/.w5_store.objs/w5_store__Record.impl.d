lib/store/record.ml: Buffer Format List Option String
