lib/store/obj_store.mli: Flow Kernel Os_error Record W5_difc W5_os
