lib/store/query.ml: List Obj_store Record Result String Syscall W5_os
