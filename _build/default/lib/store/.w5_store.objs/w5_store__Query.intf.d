lib/store/query.mli: Kernel Os_error Record W5_os
