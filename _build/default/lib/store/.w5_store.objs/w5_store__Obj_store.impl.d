lib/store/obj_store.ml: Flow Fs Os_error Record Result String Syscall W5_difc W5_os
