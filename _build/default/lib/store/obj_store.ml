open W5_difc
open W5_os

type id = string

let root = "/store"

let init ctx =
  match Syscall.mkdir ctx root ~labels:Flow.bottom with
  | Ok () -> Ok ()
  | Error (Os_error.Already_exists _) -> Ok ()
  | Error _ as e -> e

let sanitize name =
  String.map (fun c -> if c = '/' then '_' else c) name

let collection_path collection = root ^ "/" ^ sanitize collection
let object_path collection id = collection_path collection ^ "/" ^ sanitize id

let create_collection ctx collection ~labels =
  match Syscall.mkdir ctx (collection_path collection) ~labels with
  | Ok () -> Ok ()
  | Error (Os_error.Already_exists _) -> Ok ()
  | Error _ as e -> e

let put ctx ~collection ~id ~labels record =
  let path = object_path collection id in
  let data = Record.encode record in
  if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
  else Syscall.create_file ctx path ~labels ~data

let get ctx ?(taint = false) ~collection ~id () =
  let path = object_path collection id in
  let read = if taint then Syscall.read_file_taint else Syscall.read_file in
  match read ctx path with
  | Error _ as e -> e
  | Ok data ->
      Result.map_error (fun msg -> Os_error.Invalid msg) (Record.decode data)

let delete ctx ~collection ~id =
  Syscall.unlink ctx (object_path collection id)

let list ctx ~collection = Syscall.readdir ctx (collection_path collection)

let exists ctx ~collection ~id =
  Syscall.file_exists ctx (object_path collection id)

let labels_of ctx ~collection ~id =
  Result.map
    (fun st -> st.Fs.labels)
    (Syscall.stat ctx (object_path collection id))

let version_of ctx ~collection ~id =
  Result.map
    (fun st -> st.Fs.version)
    (Syscall.stat ctx (object_path collection id))
