type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64, truncated to OCaml's 63-bit ints. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t bound = Float.of_int (next t) /. Float.of_int max_int *. bound
let bool t = next t land 1 = 1

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let pick_weighted t items =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 items in
  if total <= 0 then invalid_arg "Rng.pick_weighted: weights must be positive";
  let target = int t total in
  let rec walk acc = function
    | [] -> invalid_arg "Rng.pick_weighted: unreachable"
    | (item, w) :: rest -> if acc + w > target then item else walk (acc + w) rest
  in
  walk 0 items

let shuffle t items =
  items
  |> List.map (fun item -> (next t, item))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

let string t ~length =
  String.init length (fun _ -> alphabet.[int t (String.length alphabet)])

let sample t n items =
  let shuffled = shuffle t items in
  List.filteri (fun i _ -> i < n) shuffled
