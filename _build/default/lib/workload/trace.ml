open W5_http

type action =
  | View_profile of { viewer : string; target : string }
  | List_photos of { viewer : string; target : string }
  | Read_blog of { viewer : string; target : string }
  | Upload_photo of { viewer : string; id : string }
  | Post_blog of { viewer : string; id : string }
  | Add_friend of { viewer : string; friend_name : string }

let pp_action fmt = function
  | View_profile { viewer; target } ->
      Format.fprintf fmt "%s views %s's profile" viewer target
  | List_photos { viewer; target } ->
      Format.fprintf fmt "%s lists %s's photos" viewer target
  | Read_blog { viewer; target } ->
      Format.fprintf fmt "%s reads %s's blog" viewer target
  | Upload_photo { viewer; id } -> Format.fprintf fmt "%s uploads %s" viewer id
  | Post_blog { viewer; id } -> Format.fprintf fmt "%s posts %s" viewer id
  | Add_friend { viewer; friend_name } ->
      Format.fprintf fmt "%s befriends %s" viewer friend_name

type mix = {
  view_profile : int;
  list_photos : int;
  read_blog : int;
  upload_photo : int;
  post_blog : int;
  add_friend : int;
}

let read_heavy =
  {
    view_profile = 50;
    list_photos = 25;
    read_blog = 15;
    upload_photo = 4;
    post_blog = 4;
    add_friend = 2;
  }

let write_heavy =
  {
    view_profile = 25;
    list_photos = 15;
    read_blog = 10;
    upload_photo = 20;
    post_blog = 20;
    add_friend = 10;
  }

let generate rng ~(society : Populate.society) ~mix ~length =
  let users = society.Populate.users in
  let fresh_id prefix i = Printf.sprintf "%s-t%04d" prefix i in
  List.init length (fun i ->
      let viewer = Rng.pick rng users in
      let target = Rng.pick rng users in
      let kind =
        Rng.pick_weighted rng
          [
            (`View, mix.view_profile);
            (`Photos, mix.list_photos);
            (`Blog, mix.read_blog);
            (`Upload, mix.upload_photo);
            (`Post, mix.post_blog);
            (`Friend, mix.add_friend);
          ]
      in
      match kind with
      | `View -> View_profile { viewer; target }
      | `Photos -> List_photos { viewer; target }
      | `Blog -> Read_blog { viewer; target }
      | `Upload -> Upload_photo { viewer; id = fresh_id "p" i }
      | `Post -> Post_blog { viewer; id = fresh_id "b" i }
      | `Friend -> Add_friend { viewer; friend_name = target })

type outcome = {
  total : int;
  ok : int;
  forbidden : int;
  throttled : int;
  failed : int;
}

let replay (society : Populate.society) actions =
  let clients = Hashtbl.create 16 in
  let client_of user =
    match Hashtbl.find_opt clients user with
    | Some c -> c
    | None ->
        let c = Populate.login society user in
        Hashtbl.replace clients user c;
        c
  in
  let social = "/app/" ^ society.Populate.social_id in
  let photos = "/app/" ^ society.Populate.photo_id in
  let blog = "/app/" ^ society.Populate.blog_id in
  let run = function
    | View_profile { viewer; target } ->
        Client.get (client_of viewer) social ~params:[ ("user", target) ]
    | List_photos { viewer; target } ->
        Client.get (client_of viewer) photos
          ~params:[ ("action", "list"); ("user", target) ]
    | Read_blog { viewer; target } ->
        Client.get (client_of viewer) blog
          ~params:[ ("action", "read"); ("user", target) ]
    | Upload_photo { viewer; id } ->
        Client.post (client_of viewer) photos
          ~form:[ ("action", "upload"); ("id", id); ("data", "pix-" ^ id) ]
    | Post_blog { viewer; id } ->
        Client.post (client_of viewer) blog
          ~form:[ ("action", "post"); ("id", id); ("title", id); ("body", "b") ]
    | Add_friend { viewer; friend_name } ->
        Client.post (client_of viewer) social
          ~form:[ ("action", "add_friend"); ("friend", friend_name) ]
  in
  List.fold_left
    (fun outcome action ->
      let response = run action in
      let outcome = { outcome with total = outcome.total + 1 } in
      match W5_http.Response.status_code response.Response.status with
      | 200 | 302 -> { outcome with ok = outcome.ok + 1 }
      | 403 -> { outcome with forbidden = outcome.forbidden + 1 }
      | 429 -> { outcome with throttled = outcome.throttled + 1 }
      | _ -> { outcome with failed = outcome.failed + 1 })
    { total = 0; ok = 0; forbidden = 0; throttled = 0; failed = 0 }
    actions
