lib/workload/rng.mli:
