lib/workload/trace.mli: Format Populate Rng
