lib/workload/trace.ml: Client Format Hashtbl List Populate Printf Response Rng W5_http
