lib/workload/rng.ml: Float Int Int64 List String
