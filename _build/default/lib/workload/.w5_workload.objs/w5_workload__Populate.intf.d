lib/workload/populate.mli: Platform Rng W5_http W5_platform
