(** A small deterministic PRNG (splitmix64) so every workload, test
    and benchmark is reproducible from a seed, independent of the
    stdlib Random state. *)

type t

val create : seed:int -> t
val next : t -> int
(** Uniform non-negative int (62 bits). *)

val int : t -> int -> int
(** [int t bound] in [[0, bound)]; [bound] must be positive. *)

val float : t -> float -> float
(** Uniform in [[0, bound)]. *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** Raises [Invalid_argument] on an empty list. *)

val pick_weighted : t -> ('a * int) list -> 'a
(** Weighted choice; weights must be positive. *)

val shuffle : t -> 'a list -> 'a list
val string : t -> length:int -> string
(** Lowercase alphanumeric. *)

val sample : t -> int -> 'a list -> 'a list
(** Up to [n] distinct elements, order randomized. *)
