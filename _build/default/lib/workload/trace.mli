(** Request-trace generation and replay.

    Produces seeded sequences of plausible user actions against a
    {!Populate.society} and replays them through real HTTP clients —
    the load generator behind the CLI's [serve] command, the scaling
    benchmarks and the soak tests. *)

type action =
  | View_profile of { viewer : string; target : string }
  | List_photos of { viewer : string; target : string }
  | Read_blog of { viewer : string; target : string }
  | Upload_photo of { viewer : string; id : string }
  | Post_blog of { viewer : string; id : string }
  | Add_friend of { viewer : string; friend_name : string }

val pp_action : Format.formatter -> action -> unit

(** Relative weights of the action kinds; all non-negative, at least
    one positive. *)
type mix = {
  view_profile : int;
  list_photos : int;
  read_blog : int;
  upload_photo : int;
  post_blog : int;
  add_friend : int;
}

val read_heavy : mix
(** 90% reads — the usual Web shape. *)

val write_heavy : mix
(** Half the actions mutate. *)

val generate : Rng.t -> society:Populate.society -> mix:mix -> length:int -> action list

type outcome = {
  total : int;
  ok : int;        (** HTTP 200/302 *)
  forbidden : int; (** HTTP 403: flows correctly refused *)
  throttled : int; (** HTTP 429 *)
  failed : int;    (** anything else *)
}

val replay : Populate.society -> action list -> outcome
(** Executes every action with a per-user logged-in client. *)
