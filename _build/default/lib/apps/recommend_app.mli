(** The recommendation engine over private data (§2 "Examples"):
    "Bob can deploy an application that sends him daily e-mail with
    the 5 most 'relevant' photos and blog entries posted by his
    friends."

    The app scans every friend's photos and blog entries — tainting
    itself with all of their tags — scores each item with a trivial
    relevance function, and responds with the top-k digest. The
    perimeter then requires {e each} friend's declassifier to clear
    the export to Bob: an arbitrary third-party engine gets to compute
    over everyone's private data while nobody's privacy rests on its
    good behaviour.

    Routes: [?k=N] — top-N digest for the logged-in viewer. *)

val app_name : string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
