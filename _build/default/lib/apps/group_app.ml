open W5_difc
open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "groups"

let wall platform ctx ~group_name =
  match Group.find platform ~name:group_name with
  | None -> App_util.respond_error ctx ("no such group: " ^ group_name)
  | Some group -> (
      let dir = Group.dir group in
      match Syscall.stat ctx dir with
      | Error e -> App_util.respond_error ctx (Os_error.to_string e)
      | Ok st -> (
          (* absorbing the group label needs the member capability the
             gateway granted us — non-members fail right here *)
          match Syscall.add_taint ctx st.Fs.labels.Flow.secrecy with
          | Error e -> App_util.respond_error ctx (Os_error.to_string e)
          | Ok () -> (
              match Syscall.readdir ctx dir with
              | Error e -> App_util.respond_error ctx (Os_error.to_string e)
              | Ok ids ->
                  let posts =
                    List.filter_map
                      (fun id ->
                        match Syscall.read_file_taint ctx (dir ^ "/" ^ id) with
                        | Error _ -> None
                        | Ok data -> (
                            match Record.decode data with
                            | Error _ -> None
                            | Ok r ->
                                Some
                                  (Html.element "b"
                                     (Html.text
                                        (Record.get_or r "author" ~default:"?"))
                                  ^ ": "
                                  ^ Html.text
                                      (Record.get_or r "body" ~default:""))))
                      ids
                  in
                  App_util.respond_page ctx
                    ~title:("wall: " ^ group_name)
                    (Html.ul posts))))

let post platform ctx ~viewer ~group_name ~id ~body =
  match Group.find platform ~name:group_name with
  | None -> App_util.respond_error ctx ("no such group: " ^ group_name)
  | Some group ->
      if not (Group.is_member group ~user:viewer) then
        App_util.respond_error ctx "not a member"
      else begin
        (* raise to the group label, then write into the group dir *)
        let labels =
          Flow.make ~secrecy:(Label.singleton (Group.tag group)) ()
        in
        match Syscall.add_taint ctx labels.Flow.secrecy with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () -> (
            let path = Group.dir group ^ "/" ^ id in
            let data =
              Record.encode
                (Record.of_fields [ ("author", viewer); ("body", body) ])
            in
            let result =
              if Syscall.file_exists ctx path then
                Syscall.write_file ctx path ~data
              else Syscall.create_file ctx path ~labels ~data
            in
            match result with
            | Error e -> App_util.respond_error ctx (Os_error.to_string e)
            | Ok () ->
                App_util.respond_page ctx ~title:"posted"
                  (Html.text ("posted to " ^ group_name)))
      end

let my_groups platform ctx ~viewer =
  let mine =
    Capability.Set.to_list (Group.member_caps platform ~user:viewer)
    |> List.filter_map (fun cap ->
           let tag = Capability.tag cap in
           let name = Tag.name tag in
           let prefix = "group:" in
           if String.length name > String.length prefix then
             Some (String.sub name (String.length prefix)
                     (String.length name - String.length prefix))
           else None)
    |> List.sort_uniq String.compare
  in
  App_util.respond_page ctx ~title:"my groups" (Html.ul (List.map Html.text mine))

let handler_with platform ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match App_util.viewer_or_respond ctx env with
  | None -> ()
  | Some viewer -> (
      match Request.param_or request "action" ~default:"mine" with
      | "wall" -> (
          match Request.param request "group" with
          | Some group_name -> wall platform ctx ~group_name
          | None -> App_util.respond_error ctx "group required")
      | "post" -> (
          match
            ( Request.param request "group",
              Request.param request "id",
              Request.param request "body" )
          with
          | Some group_name, Some id, Some body ->
              post platform ctx ~viewer ~group_name ~id ~body
          | _ -> App_util.respond_error ctx "group, id and body required")
      | "mine" -> my_groups platform ctx ~viewer
      | other -> App_util.respond_error ctx ("unknown action: " ^ other))

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "group_app.ml: renders circle walls; membership capabilities \
          and the group declassifier do all the enforcing")
    (handler_with platform)
