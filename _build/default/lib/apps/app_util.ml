open W5_difc
open W5_os
open W5_store
open W5_http
open W5_platform

let user_dir user = "/users/" ^ user
let user_file user file = user_dir user ^ "/" ^ file

let read_record ctx ~user ~file =
  match Syscall.read_file_taint ctx (user_file user file) with
  | Error _ as e -> e
  | Ok data ->
      Result.map_error (fun m -> Os_error.Invalid m) (Record.decode data)

let write_record ctx ~user ~file ~labels record =
  let path = user_file user file in
  let data = Record.encode record in
  if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
  else Syscall.create_file ctx path ~labels ~data

let friends_of ctx ~user =
  match read_record ctx ~user ~file:"friends" with
  | Error _ -> []
  | Ok r -> Record.get_list r "friends"

let respond_page ctx ~title body =
  ignore (Syscall.respond ctx (Html.page ~title body))

let respond_error ctx message =
  respond_page ctx ~title:"error" (Html.element "p" (Html.text message))

let viewer_or_respond ctx (env : App_registry.env) =
  match env.App_registry.viewer with
  | Some user -> Some user
  | None ->
      respond_error ctx "please log in";
      None

let endorse_write ctx (_env : App_registry.env) ~user =
  (* The write tag is discoverable only through its own account here;
     apps learn it by probing their capability set: the gateway put
     exactly the delegated [t+]s there. *)
  let candidates =
    Capability.Set.to_list (Syscall.my_caps ctx)
    |> List.filter_map (fun cap ->
           let tag = Capability.tag cap in
           if
             Capability.sign cap = Capability.Plus
             && Tag.kind tag = Tag.Integrity
             && Tag.name tag = user ^ ".write"
           then Some tag
           else None)
  in
  match candidates with
  | [] -> false
  | tag :: _ -> (
      match Syscall.endorse_self ctx tag with Ok () -> true | Error _ -> false)

let user_data_labels ctx ~user =
  match Syscall.stat ctx (user_dir user) with
  | Error _ -> None
  | Ok st ->
      let write_tag =
        Capability.Set.to_list (Syscall.my_caps ctx)
        |> List.find_map (fun cap ->
               let tag = Capability.tag cap in
               if Tag.kind tag = Tag.Integrity && Tag.name tag = user ^ ".write"
               then Some tag
               else None)
      in
      let integrity =
        match write_tag with
        | Some tag -> Label.singleton tag
        | None -> Label.empty
      in
      Some (Flow.make ~secrecy:st.Fs.labels.Flow.secrecy ~integrity ())

let list_user_files ctx ~user ~sub =
  let dir = user_file user sub in
  match Syscall.stat ctx dir with
  | Error _ -> []
  | Ok st -> (
      match Syscall.add_taint ctx st.Fs.labels.Flow.secrecy with
      | Error _ -> []
      | Ok () -> (
          match Syscall.readdir ctx dir with
          | Ok names -> names
          | Error _ -> []))
