open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "dating"
let metric_file = "dating_metric"

let parse_metric s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.filter_map (fun pair ->
           match String.index_opt pair ':' with
           | None -> Some (pair, 1)
           | Some i -> (
               let interest = String.sub pair 0 i in
               let weight =
                 String.sub pair (i + 1) (String.length pair - i - 1)
               in
               match int_of_string_opt weight with
               | Some w -> Some (interest, w)
               | None -> None))

let compatibility metric ~interests =
  List.fold_left
    (fun acc (interest, weight) ->
      if List.mem interest interests then acc + weight else acc)
    0 metric

let set_metric ctx env ~viewer ~metric =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match App_util.user_data_labels ctx ~user:viewer with
    | None -> App_util.respond_error ctx "cannot determine labels"
    | Some labels -> (
        match
          App_util.write_record ctx ~user:viewer ~file:metric_file ~labels
            (Record.of_fields [ ("metric", metric) ])
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"metric" (Html.text "metric saved"))

let all_users ctx =
  match Syscall.readdir ctx "/users" with Ok users -> users | Error _ -> []

let matches ctx ~viewer ~k =
  let metric =
    match App_util.read_record ctx ~user:viewer ~file:metric_file with
    | Error _ -> []
    | Ok r -> parse_metric (Record.get_or r "metric" ~default:"")
  in
  if metric = [] then
    App_util.respond_error ctx "set a compatibility metric first"
  else begin
    let candidates =
      all_users ctx
      |> List.filter (fun u -> u <> viewer)
      |> List.filter_map (fun u ->
             match App_util.read_record ctx ~user:u ~file:"profile" with
             | Error _ -> None
             | Ok profile ->
                 let interests = Record.get_list profile "interests" in
                 if interests = [] then None
                 else Some (u, compatibility metric ~interests))
    in
    let ranked =
      List.sort
        (fun (u1, s1) (u2, s2) ->
          match Int.compare s2 s1 with
          | 0 -> String.compare u1 u2
          | c -> c)
        candidates
    in
    let top = List.filteri (fun i _ -> i < k) ranked in
    App_util.respond_page ctx ~title:"matches"
      (Html.ul
         (List.map
            (fun (u, s) -> Html.text (Printf.sprintf "%s (score %d)" u s))
            top))
  end

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match App_util.viewer_or_respond ctx env with
  | None -> ()
  | Some viewer -> (
      match Request.param_or request "action" ~default:"match" with
      | "set_metric" -> (
          match Request.param request "metric" with
          | Some metric -> set_metric ctx env ~viewer ~metric
          | None -> App_util.respond_error ctx "metric required")
      | "match" ->
          let k =
            match int_of_string_opt (Request.param_or request "k" ~default:"3")
            with
            | Some n when n > 0 -> n
            | Some _ | None -> 3
          in
          matches ctx ~viewer ~k
      | other -> App_util.respond_error ctx ("unknown action: " ^ other))

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "dating_app.ml: user-supplied compatibility metric over all \
          participants' profiles")
    handler
