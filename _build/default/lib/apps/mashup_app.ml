open W5_difc
open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "mashup"
let map_slot = "map.render"
let book_file = "addressbook"

let geocode street =
  let h = Hashtbl.hash street in
  (h mod 40, h / 40 mod 12)

let add_entry ctx env ~viewer ~name ~street =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    let book =
      match App_util.read_record ctx ~user:viewer ~file:book_file with
      | Error _ -> Record.empty
      | Ok r -> r
    in
    let entries = Record.get_list book "entries" in
    let entry = name ^ ":" ^ street in
    let book =
      Record.set_list book "entries"
        (if List.mem entry entries then entries else entries @ [ entry ])
    in
    match App_util.user_data_labels ctx ~user:viewer with
    | None -> App_util.respond_error ctx "cannot determine labels"
    | Some labels -> (
        match
          App_util.write_record ctx ~user:viewer ~file:book_file ~labels book
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"addressbook"
              (Html.text ("added " ^ name)))

let render_map ctx env ~viewer =
  match App_util.read_record ctx ~user:viewer ~file:book_file with
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok book -> (
      let entries =
        Record.get_list book "entries"
        |> List.filter_map (fun entry ->
               match String.index_opt entry ':' with
               | None -> None
               | Some i ->
                   let name = String.sub entry 0 i in
                   let street =
                     String.sub entry (i + 1) (String.length entry - i - 1)
                   in
                   Some (name, street))
      in
      let markers =
        List.map
          (fun (name, street) ->
            let x, y = geocode street in
            Printf.sprintf "%s@%d,%d" name x y)
          entries
      in
      let addresses =
        String.concat ";" (List.map (fun (_, street) -> street) entries)
      in
      let module_id =
        Option.value
          (env.App_registry.module_for_slot map_slot)
          ~default:"gmaps/render"
      in
      let sub =
        Request.make Request.GET
          (Uri.with_query "/render"
             [ ("markers", String.concat ";" markers); ("addresses", addresses) ])
      in
      match env.App_registry.run_module ctx ~module_id sub with
      | Error e -> App_util.respond_error ctx ("map module failed: " ^ e)
      | Ok map ->
          App_util.respond_page ctx
            ~title:(viewer ^ "'s map")
            (Html.element "pre" (Html.text map)))

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match App_util.viewer_or_respond ctx env with
  | None -> ()
  | Some viewer -> (
      match Request.param_or request "action" ~default:"map" with
      | "add" -> (
          match (Request.param request "name", Request.param request "street")
          with
          | Some name, Some street -> add_entry ctx env ~viewer ~name ~street
          | _ -> App_util.respond_error ctx "name and street required")
      | "map" -> render_map ctx env ~viewer
      | other -> App_util.respond_error ctx ("unknown action: " ^ other))

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "mashup_app.ml: address book + map rendered entirely inside \
          the perimeter")
    ~imports:[ "gmaps/render" ] handler

(* The map renderer: draws a 40x12 character grid with markers. The
   evil variant also copies the addresses it was shown into its
   developer's scratch space — staging for exfiltration. *)
let render_grid markers =
  let width = 40 and height = 12 in
  let grid = Array.make_matrix height width '.' in
  List.iter
    (fun marker ->
      match String.index_opt marker '@' with
      | None -> ()
      | Some i -> (
          let coords =
            String.sub marker (i + 1) (String.length marker - i - 1)
          in
          match String.split_on_char ',' coords with
          | [ x; y ] -> (
              match (int_of_string_opt x, int_of_string_opt y) with
              | Some x, Some y when x >= 0 && x < width && y >= 0 && y < height
                ->
                  grid.(y).(x) <- '*'
              | _ -> ())
          | _ -> ()))
    markers;
  String.concat "\n"
    (Array.to_list (Array.map (fun row -> String.init width (Array.get row)) grid))

let map_handler ~evil ~dev_name ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  let markers =
    String.split_on_char ';' (Request.param_or request "markers" ~default:"")
  in
  if evil then begin
    (* Stash what we saw. The write succeeds — the data is still inside
       the perimeter — but the stash inherits our taint, so the
       developer can never export it. *)
    let addresses = Request.param_or request "addresses" ~default:"" in
    let stash = "/apps/" ^ dev_name ^ "/stash" in
    let labels = Syscall.my_labels ctx in
    (match Syscall.mkdir ctx ("/apps/" ^ dev_name) ~labels with
    | Ok () | Error _ -> ());
    (match Syscall.append_file ctx stash ~data:(addresses ^ "\n") with
    | Ok () -> ()
    | Error _ -> (
        match Syscall.create_file ctx stash ~labels ~data:(addresses ^ "\n") with
        | Ok () | Error _ -> ()))
  end;
  ignore (Syscall.respond ctx (render_grid markers))

let publish_map_module platform ~dev ~name ~evil =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         (if evil then "map renderer (stashes addresses it sees)"
          else "map renderer: pure grid drawing"))
    (map_handler ~evil ~dev_name:(Principal.name dev))
