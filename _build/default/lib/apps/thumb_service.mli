(** An asynchronous thumbnail worker — applications cooperating
    through labeled IPC (§2 "communication with other modules").

    One worker {e per user}, running at that user's secrecy label from
    birth (the Asbestos-style answer to taint accumulation in shared
    services: a worker that served two users would end up too tainted
    to write for either). The worker holds {e no} standing privilege:
    each request message carries the user's delegated write capability
    ({!W5_os.Syscall.send}[ ~grant]), so the worker can write the
    thumbnail back only while serving a request from an app the user
    delegated to — capability delegation over IPC, end to end.

    The photo app sends the request {e before} reading any user data
    (its process is still untainted, so the flow to the user-labeled
    worker is allowed); the worker does its own tainting read. Workers
    are pumped explicitly ({!pump_for}) — the simulation's stand-in
    for a background scheduler tick. *)

open W5_platform

val install : Platform.t -> user:string -> (W5_os.Service.t, W5_os.Os_error.t) result
(** Idempotent per user. *)

val worker_for : Platform.t -> user:string -> W5_os.Service.t option

val request :
  W5_os.Kernel.ctx -> Platform.t -> user:string -> id:string ->
  (unit, W5_os.Os_error.t) result
(** Called from inside an app process: grants the user's write
    capability (which the caller must hold) along with the message. *)

val pump_for : Platform.t -> user:string -> (int, W5_os.Os_error.t) result
(** Deliver the user's pending thumbnail jobs; returns jobs done. *)

val thumbnail_of : string -> string
(** The "rendering": first 8 bytes + ["~thumb"]. *)
