(** Polls whose tallies may circulate but whose ballots may not.

    Votes are stored in the object store, labeled with the voter's
    secrecy tag. Reading any view of the poll taints the process with
    every scanned ballot (the safe query engine), so exporting a view
    needs every voter's declassifier. Voters authorize
    [Declassifier.require_no_secrets everyone]: since the app renders
    raw ballots inside sensitive-span markers and tallies without
    them, aggregates flow to anyone while ballot listings are vetoed —
    a user-expressible policy today's Web cannot state at all (§1).

    Routes:
    - [POST action=vote&poll=P&choice=C] (one vote per user per poll,
      later votes overwrite)
    - [?action=tally&poll=P] — aggregate counts (exportable)
    - [?action=ballots&poll=P] — raw votes (owner-eyes / vetoed) *)

val app_name : string
val collection : string -> string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
