open W5_os
open W5_http
open W5_platform

let app_name = "photos"
let crop_slot = "photo.crop"
let photos_dir user = App_util.user_file user "photos"
let photo_path user id = photos_dir user ^ "/" ^ id

let data_labels = App_util.user_data_labels

let upload ctx env ~viewer ~id ~data =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match data_labels ctx ~user:viewer with
    | None -> App_util.respond_error ctx "cannot determine labels"
    | Some labels -> (
        (match Syscall.mkdir ctx (photos_dir viewer) ~labels with
        | Ok () | Error (Os_error.Already_exists _) -> ()
        | Error e -> App_util.respond_error ctx (Os_error.to_string e));
        let path = photo_path viewer id in
        let result =
          if Syscall.file_exists ctx path then
            Syscall.write_file ctx path ~data
          else Syscall.create_file ctx path ~labels ~data
        in
        match result with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"uploaded"
              (Html.text ("stored photo " ^ id)))

let view ctx env ~user ~id ~size =
  match Syscall.read_file_taint ctx (photo_path user id) with
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok data -> (
      let rendered =
        match env.App_registry.module_for_slot crop_slot with
        | None -> Ok data
        | Some module_id ->
            let sub =
              Request.make Request.GET
                (Uri.with_query "/crop" [ ("data", data); ("size", size) ])
            in
            env.App_registry.run_module ctx ~module_id sub
      in
      match rendered with
      | Error e -> App_util.respond_error ctx ("crop module failed: " ^ e)
      | Ok out ->
          App_util.respond_page ctx
            ~title:(user ^ "/" ^ id)
            (Html.element "div"
               ~attrs:[ ("class", "photo") ]
               (Html.text out)))

let delete ctx env ~viewer ~id =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match Syscall.unlink ctx (photo_path viewer id) with
    | Error e -> App_util.respond_error ctx (Os_error.to_string e)
    | Ok () ->
        App_util.respond_page ctx ~title:"deleted"
          (Html.text ("deleted photo " ^ id))

let list_photos ctx ~user =
  let ids = App_util.list_user_files ctx ~user ~sub:"photos" in
  App_util.respond_page ctx
    ~title:(user ^ "'s photos")
    (Html.ul (List.map Html.text ids))

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"list" with
  | "upload" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match (Request.param request "id", Request.param request "data") with
          | Some id, Some data -> upload ctx env ~viewer ~id ~data
          | _ -> App_util.respond_error ctx "id and data required"))
  | "view" -> (
      match (Request.param request "user", Request.param request "id") with
      | Some user, Some id ->
          view ctx env ~user ~id ~size:(Request.param_or request "size" ~default:"8")
      | _ -> App_util.respond_error ctx "user and id required")
  | "delete" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match Request.param request "id" with
          | Some id -> delete ctx env ~viewer ~id
          | None -> App_util.respond_error ctx "id required"))
  | "list" -> (
      match
        (Request.param request "user", env.App_registry.viewer)
      with
      | Some user, _ | None, Some user -> list_photos ctx ~user
      | None, None -> App_util.respond_error ctx "user required")
  | other -> App_util.respond_error ctx ("unknown action: " ^ other)

(* The published handler additionally supports asynchronous
   thumbnailing through the per-user worker service; the service
   lookup needs the platform, so it is bound at publish time. *)
let handler_with platform ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"list" with
  | "thumb" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match Request.param request "id" with
          | None -> App_util.respond_error ctx "id required"
          | Some id -> (
              match Thumb_service.request ctx platform ~user:viewer ~id with
              | Error e -> App_util.respond_error ctx (Os_error.to_string e)
              | Ok () ->
                  App_util.respond_page ctx ~title:"queued"
                    (Html.text ("thumbnail queued for " ^ id)))))
  | _ -> handler ctx env

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "photo_app.ml: labeled photo storage; renders through the \
          viewer's chosen crop module, run inline; thumbnails are \
          delegated to the per-user worker over IPC.")
    (handler_with platform)

(* A crop module is itself an app: it reads [data] and [size] from its
   request and responds with the transformation. *)
let crop_handler style ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  let data = Request.param_or request "data" ~default:"" in
  let size =
    match int_of_string_opt (Request.param_or request "size" ~default:"8") with
    | Some n when n >= 0 -> n
    | Some _ | None -> 8
  in
  let clamp n = min n (String.length data) in
  let out =
    match style with
    | `Head -> String.sub data 0 (clamp size)
    | `Tail ->
        let n = clamp size in
        String.sub data (String.length data - n) n
    | `Frame -> "[[" ^ data ^ "]]"
  in
  ignore (Syscall.respond ctx out)

let publish_crop_module platform ~dev ~name ~style =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         ("crop module " ^ name ^ ": pure transformation of its input"))
    ~imports:[] (crop_handler style)
