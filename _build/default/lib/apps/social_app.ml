open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "social"

let render_profile ctx ~user =
  match App_util.read_record ctx ~user ~file:"profile" with
  | Error e ->
      App_util.respond_error ctx ("cannot load profile: " ^ Os_error.to_string e)
  | Ok profile ->
      let friends = App_util.friends_of ctx ~user in
      let fields =
        List.map
          (fun (k, v) -> Html.element "b" (Html.text k) ^ ": " ^ Html.text v)
          (Record.fields profile)
      in
      App_util.respond_page ctx
        ~title:(user ^ "'s profile")
        (Html.element "h1" (Html.text user)
        ^ Html.ul fields
        ^ Html.element "h2" (Html.text "friends")
        ^ Html.ul (List.map Html.text friends))

let add_friend ctx env ~viewer ~friend_name =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match App_util.read_record ctx ~user:viewer ~file:"friends" with
    | Error e -> App_util.respond_error ctx (Os_error.to_string e)
    | Ok r -> (
        let friends = Record.get_list r "friends" in
        let friends =
          if List.mem friend_name friends then friends
          else friends @ [ friend_name ]
        in
        match
          Syscall.write_file ctx
            (App_util.user_file viewer "friends")
            ~data:(Record.encode (Record.set_list r "friends" friends))
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"friends"
              (Html.text ("now friends with " ^ friend_name)))

let remove_friend ctx env ~viewer ~friend_name =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match App_util.read_record ctx ~user:viewer ~file:"friends" with
    | Error e -> App_util.respond_error ctx (Os_error.to_string e)
    | Ok r -> (
        let friends =
          List.filter (( <> ) friend_name) (Record.get_list r "friends")
        in
        match
          Syscall.write_file ctx
            (App_util.user_file viewer "friends")
            ~data:(Record.encode (Record.set_list r "friends" friends))
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"friends"
              (Html.text ("no longer friends with " ^ friend_name)))

let set_profile ctx env ~viewer ~field ~value =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match App_util.read_record ctx ~user:viewer ~file:"profile" with
    | Error e -> App_util.respond_error ctx (Os_error.to_string e)
    | Ok r -> (
        match
          Syscall.write_file ctx
            (App_util.user_file viewer "profile")
            ~data:(Record.encode (Record.set r field value))
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"profile"
              (Html.text ("profile updated: " ^ field)))

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"view" with
  | "view" -> (
      let user =
        match Request.param request "user" with
        | Some u -> Some u
        | None -> env.App_registry.viewer
      in
      match user with
      | None -> App_util.respond_error ctx "user required"
      | Some user -> render_profile ctx ~user)
  | "add_friend" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match Request.param request "friend" with
          | None -> App_util.respond_error ctx "friend required"
          | Some friend_name -> add_friend ctx env ~viewer ~friend_name))
  | "remove_friend" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match Request.param request "friend" with
          | None -> App_util.respond_error ctx "friend required"
          | Some friend_name -> remove_friend ctx env ~viewer ~friend_name))
  | "set_profile" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match (Request.param request "field", Request.param request "value")
          with
          | Some field, Some value -> set_profile ctx env ~viewer ~field ~value
          | _ -> App_util.respond_error ctx "field and value required"))
  | other -> App_util.respond_error ctx ("unknown action: " ^ other)

let source =
  "social_app.ml: reads profiles with tainting reads; mutates friend \
   lists only under a delegated write capability; holds no export \
   privilege. See repository lib/apps/social_app.ml for the audited text."

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0" ~source:(App_registry.Open_source source)
    handler
