open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "chameleon"
let rules_file = "chameleon_rules"

let hidden_for rules ~field ~viewer =
  match viewer with
  | None -> true (* unknown viewers get the most conservative page *)
  | Some v -> List.mem v (Record.get_list rules ("hide_" ^ field))

let render ctx env ~user =
  match App_util.read_record ctx ~user ~file:"profile" with
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok profile ->
      let rules =
        match App_util.read_record ctx ~user ~file:rules_file with
        | Error _ -> Record.empty
        | Ok r -> r
      in
      let viewer = env.App_registry.viewer in
      let visible =
        List.filter
          (fun (field, _) -> not (hidden_for rules ~field ~viewer))
          (Record.fields profile)
      in
      App_util.respond_page ctx
        ~title:(user ^ " (chameleon)")
        (Html.ul
           (List.map
              (fun (k, v) -> Html.element "b" (Html.text k) ^ ": " ^ Html.text v)
              visible))

let hide ctx env ~viewer ~field ~from_list =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    let rules =
      match App_util.read_record ctx ~user:viewer ~file:rules_file with
      | Error _ -> Record.empty
      | Ok r -> r
    in
    let rules = Record.set rules ("hide_" ^ field) from_list in
    match App_util.user_data_labels ctx ~user:viewer with
    | None -> App_util.respond_error ctx "cannot determine labels"
    | Some labels -> (
        match
          App_util.write_record ctx ~user:viewer ~file:rules_file ~labels rules
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"chameleon"
              (Html.text ("hiding " ^ field)))

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"view" with
  | "view" -> (
      match (Request.param request "user", env.App_registry.viewer) with
      | Some user, _ | None, Some user -> render ctx env ~user
      | None, None -> App_util.respond_error ctx "user required")
  | "hide" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match (Request.param request "field", Request.param request "from")
          with
          | Some field, Some from_list -> hide ctx env ~viewer ~field ~from_list
          | _ -> App_util.respond_error ctx "field and from required"))
  | other -> App_util.respond_error ctx ("unknown action: " ^ other)

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "chameleon_app.ml: viewer-dependent profile filtered server-side")
    handler
