(** The "chameleon" profile display (§2 "Examples"): a profile page
    that adjusts its output based on the viewer — "to hide his
    penchant for Sci-Fi novels from love interests".

    The owner stores hiding rules under [chameleon_rules]:
    [hide_<field> = v1,v2,…] means field [<field>] is omitted when the
    viewer appears in that list. The filtering happens {e server-side,
    before export}: the hidden field never crosses the perimeter for
    those viewers, which no client-side trick can guarantee.

    Routes:
    - [?user=U] — render U's profile, filtered for the viewer
    - [POST action=hide&field=F&from=v1,v2] (write delegation) *)

val app_name : string
val rules_file : string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
