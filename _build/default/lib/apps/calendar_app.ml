open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "calendar"
let calendar_dir user = App_util.user_file user "calendar"
let event_path user id = calendar_dir user ^ "/" ^ id

let add_event ctx env ~viewer ~id ~title ~day ~start ~len =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match App_util.user_data_labels ctx ~user:viewer with
    | None -> App_util.respond_error ctx "cannot determine labels"
    | Some labels -> (
        (match Syscall.mkdir ctx (calendar_dir viewer) ~labels with
        | Ok () | Error (Os_error.Already_exists _) -> ()
        | Error e -> App_util.respond_error ctx (Os_error.to_string e));
        let event =
          Record.of_fields
            [
              ("title", title);
              ("day", string_of_int day);
              ("start", string_of_int start);
              ("len", string_of_int len);
            ]
        in
        let path = event_path viewer id in
        let data = Record.encode event in
        let result =
          if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
          else Syscall.create_file ctx path ~labels ~data
        in
        match result with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"calendar"
              (Html.text ("event stored: " ^ id)))

let events_of ctx ~user =
  App_util.list_user_files ctx ~user ~sub:"calendar"
  |> List.filter_map (fun id ->
         match Syscall.read_file_taint ctx (event_path user id) with
         | Error _ -> None
         | Ok data -> (
             match Record.decode data with
             | Error _ -> None
             | Ok r -> Some (id, r)))

let day_names = [| "mon"; "tue"; "wed"; "thu"; "fri"; "sat"; "sun" |]

let week_view ctx ~user =
  let events = events_of ctx ~user in
  let rows =
    List.init 7 (fun day ->
        let todays =
          List.filter (fun (_, r) -> Record.get_int r "day" = Some day) events
          |> List.sort (fun (_, r1) (_, r2) ->
                 compare (Record.get_int r1 "start") (Record.get_int r2 "start"))
        in
        let cells =
          List.map
            (fun (_, r) ->
              let start = Option.value (Record.get_int r "start") ~default:0 in
              let len = max 1 (Option.value (Record.get_int r "len") ~default:1) in
              (* the slot is public to whoever may see the page; the
                 title is a marked sensitive span *)
              Printf.sprintf "%02d:00-%02d:00 %s" start (start + len)
                (Declassifier.secret_span
                   (Html.text (Record.get_or r "title" ~default:"(untitled)"))))
            todays
        in
        Html.element "li"
          (Html.element "b" day_names.(day)
          ^
          if cells = [] then " free"
          else " " ^ String.concat "; " cells))
  in
  App_util.respond_page ctx
    ~title:(user ^ "'s week")
    (Html.element "ul" (String.concat "" rows))

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"week" with
  | "add" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          let param_int key =
            Option.bind (Request.param request key) int_of_string_opt
          in
          match
            ( Request.param request "id",
              Request.param request "title",
              param_int "day",
              param_int "start",
              param_int "len" )
          with
          | Some id, Some title, Some day, Some start, Some len
            when day >= 0 && day < 7 ->
              add_event ctx env ~viewer ~id ~title ~day ~start ~len
          | _ ->
              App_util.respond_error ctx
                "id, title, day (0-6), start and len required"))
  | "week" -> (
      match (Request.param request "user", env.App_registry.viewer) with
      | Some user, _ | None, Some user -> week_view ctx ~user
      | None, None -> App_util.respond_error ctx "user required")
  | other -> App_util.respond_error ctx ("unknown action: " ^ other)

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "calendar_app.ml: week view with times in the clear and titles \
          in sensitive spans — busy/free sharing via a redacting \
          declassifier")
    handler
