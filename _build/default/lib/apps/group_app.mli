(** The groups application: circle walls over HTTP.

    Thin developer-side code over {!W5_platform.Group}: the gateway
    already equips member processes with the group's read capability,
    the group directory's restricted label keeps non-members out at
    the read, and the group's own declassifier gates the export. The
    app just renders.

    Routes:
    - [?action=wall&group=G] — the group's posts (members only, both
      at read and export)
    - [POST action=post&group=G&id=I&body=B] — post to the wall
      (members only)
    - [GET] — the groups the viewer belongs to *)

val app_name : string
val handler_with : W5_platform.Platform.t -> W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
