(** Photo sharing with user-chosen processing modules (§1, §2).

    Photos are byte strings stored under [/users/<u>/photos/<id>],
    labeled with the owner's tags. Rendering a photo pipes it through
    the viewer's chosen module for the ["photo.crop"] slot — "Use
    developer A's photo cropping module" — executed inline with
    {!W5_platform.App_registry.env.run_module}.

    Routes:
    - [POST action=upload&id=I&data=D] — store a photo (write
      delegation required)
    - [?action=view&user=U&id=I&size=N] — render through the chosen
      crop module
    - [POST action=delete&id=I] — remove one's own photo (write
      delegation; deletion is a write, §3.1)
    - [POST action=thumb&id=I] — queue asynchronous thumbnailing on
      the viewer's worker service (see {!Thumb_service})
    - [?action=list&user=U] — list photo ids *)

val app_name : string
val crop_slot : string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result

val publish_crop_module :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t -> name:string ->
  style:[ `Head | `Tail | `Frame ] ->
  (W5_platform.App_registry.app, string) result
(** Three competing crop modules from independent developers: keep the
    head, keep the tail, or add a decorative frame. (Photos are byte
    strings in the simulation; the styles are distinguishable so tests
    can assert which module ran.) *)
