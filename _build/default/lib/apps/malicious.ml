open W5_os
open W5_http
open W5_platform

let thief_handler ctx (env : App_registry.env) =
  let target =
    Request.param_or env.App_registry.request "target" ~default:"alice"
  in
  match Syscall.read_file_taint ctx (App_util.user_file target "profile") with
  | Error e ->
      App_util.respond_error ctx ("could not even read: " ^ Os_error.to_string e)
  | Ok secret ->
      (* Attempt 1: copy the loot somewhere public. *)
      let copy_result =
        Syscall.create_file ctx
          ("/apps/loot-" ^ target)
          ~labels:W5_difc.Flow.bottom ~data:secret
      in
      let note =
        match copy_result with
        | Ok () -> "copy-to-public SUCCEEDED (bug!)"
        | Error _ -> "copy-to-public denied"
      in
      (* Attempt 2: just respond with it and hope the perimeter leaks. *)
      App_util.respond_page ctx ~title:"totally legit page"
        (Html.text (secret ^ " [" ^ note ^ "]"))

let vandal_handler ctx (env : App_registry.env) =
  let target =
    Request.param_or env.App_registry.request "target" ~default:"alice"
  in
  let attempt name outcome =
    name ^ ": "
    ^ (match outcome with
      | Ok () -> "ALLOWED (bug!)"
      | Error e -> "denied (" ^ Os_error.to_string e ^ ")")
  in
  let profile = App_util.user_file target "profile" in
  let friends = App_util.user_file target "friends" in
  let report =
    [
      attempt "overwrite profile"
        (Syscall.write_file ctx profile ~data:"VANDALIZED");
      attempt "delete friends" (Syscall.unlink ctx friends);
      attempt "strip labels"
        (Syscall.set_file_labels ctx profile ~labels:W5_difc.Flow.bottom);
    ]
  in
  App_util.respond_page ctx ~title:"vandal report"
    (Html.ul (List.map Html.text report))

let hog_handler ctx (_env : App_registry.env) =
  let rec burn () =
    ignore (Syscall.file_exists ctx "/");
    burn ()
  in
  burn ()

let spammer_handler ctx (_env : App_registry.env) =
  let rec flood i =
    match
      Syscall.create_file ctx
        (Printf.sprintf "/apps/spam-%d" i)
        ~labels:W5_difc.Flow.bottom ~data:"spam"
    with
    | Ok () | Error _ -> flood (i + 1)
  in
  flood 0

let scramble s =
  String.map
    (fun c ->
      let code = Char.code c in
      if code >= 32 && code < 127 then Char.chr (126 - code + 32) else c)
    s

let hoarder_handler ctx (env : App_registry.env) =
  match App_util.viewer_or_respond ctx env with
  | None -> ()
  | Some viewer -> (
      let data =
        Request.param_or env.App_registry.request "data" ~default:""
      in
      if not (App_util.endorse_write ctx env ~user:viewer) then
        App_util.respond_error ctx "write not delegated"
      else
        match App_util.user_data_labels ctx ~user:viewer with
        | None -> App_util.respond_error ctx "cannot determine labels"
        | Some labels -> (
            (* Store the user's own data, but scrambled: perfectly legal,
               merely anti-social (§3.2). *)
            let path = App_util.user_file viewer "hoard.dat" in
            let payload = scramble data in
            let result =
              if Syscall.file_exists ctx path then
                Syscall.write_file ctx path ~data:payload
              else Syscall.create_file ctx path ~labels ~data:payload
            in
            match result with
            | Error e -> App_util.respond_error ctx (Os_error.to_string e)
            | Ok () ->
                App_util.respond_page ctx ~title:"imported"
                  (Html.text "your data is safe with us")))

let prober_handler ctx (env : App_registry.env) =
  let collection =
    Request.param_or env.App_registry.request "collection" ~default:"inbox-alice"
  in
  match
    W5_store.Query.count ctx ~collection ~where:W5_store.Query.always
  with
  | Error e ->
      App_util.respond_error ctx ("count failed: " ^ Os_error.to_string e)
  | Ok n ->
      (* the one covert bit, loudly *)
      App_util.respond_page ctx ~title:"weather report"
        (Html.text
           (if n > 0 then "BIT:1 cloudy with a chance of messages"
            else "BIT:0 clear skies"))

let publish_all platform ~dev =
  let registry = Platform.registry platform in
  let publish name handler =
    ( name,
      App_registry.publish registry ~dev ~name ~version:"1.0"
        ~source:App_registry.Closed_binary handler )
  in
  [
    publish "thief" thief_handler;
    publish "vandal" vandal_handler;
    publish "hog" hog_handler;
    publish "spammer" spammer_handler;
    publish "hoarder" hoarder_handler;
    publish "prober" prober_handler;
  ]
