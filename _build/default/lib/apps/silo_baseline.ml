type site = {
  name : string;
  tables : (string, (string * string) list ref) Hashtbl.t;
}

let create_site name = { name; tables = Hashtbl.create 32 }
let site_name s = s.name

let table s user =
  match Hashtbl.find_opt s.tables user with
  | Some t -> t
  | None ->
      let t = ref [] in
      Hashtbl.replace s.tables user t;
      t

let set_data s ~user ~key ~value =
  let t = table s user in
  t := (key, value) :: List.remove_assoc key !t

let get_data s ~user ~key =
  Option.bind (Hashtbl.find_opt s.tables user) (fun t -> List.assoc_opt key !t)

let users s =
  Hashtbl.fold (fun user _ acc -> user :: acc) s.tables []
  |> List.sort String.compare

let data_of s ~user =
  match Hashtbl.find_opt s.tables user with
  | None -> []
  | Some t -> List.rev !t

let thief_export s ~user =
  String.concat ";"
    (List.map (fun (k, v) -> k ^ "=" ^ v) (data_of s ~user))

let privacy_setting s ~user ~honored =
  if honored then None else Some (thief_export s ~user)

let migrate ~from_site ~to_site ~user =
  let items = data_of from_site ~user in
  List.iter (fun (key, value) -> set_data to_site ~user ~key ~value) items;
  List.length items

let duplication_factor sites ~user ~key =
  List.length
    (List.filter (fun s -> get_data s ~user ~key <> None) sites)
