(** Online dating with a user-supplied compatibility metric (§2
    "Examples": "Bob can upload a custom compatibility metric").

    Every participant stores an [interests] field in their profile and
    opts in by enabling the app. The viewer stores a metric — a list
    of [interest:weight] pairs — under their own data; matching scans
    all participants' profiles (tainting the process with everyone's
    tags) and scores candidates by the summed weights of shared
    interests. Exporting the match list to the viewer requires every
    scanned participant's declassifier to approve — in practice
    participants authorize a "daters" group declassifier when joining.

    Routes:
    - [POST action=set_metric&metric=a:3,b:1]
    - [?action=match&k=N] *)

val app_name : string
val handler : W5_platform.App_registry.handler

val parse_metric : string -> (string * int) list
val compatibility : (string * int) list -> interests:string list -> int

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
