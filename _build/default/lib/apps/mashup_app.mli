(** The server-side mashup from §4: a private address book rendered on
    a map, {e without} revealing the addresses to the map's developer.

    The paper's comparison: a client-side mashup ships the address
    book page to the map provider's API; MashupOS can hide the names
    but "cannot stop the transmission of the addresses back to
    Google's servers". On W5 the map renderer is just another module
    executed inside the perimeter — it sees the addresses (taints
    itself with the viewer's tag) but has no way to export them.

    The address book lives at [/users/<u>/addressbook]
    ([entries = name:street,…]). Geocoding is a deterministic hash of
    the street string. The map module (slot ["map.render"], default
    ["gmaps/render"]) receives marker coordinates {e and} raw
    addresses — deliberately more than it needs — and returns ASCII
    map art.

    Routes:
    - [GET] — render the viewer's address book on a map
    - [POST action=add&name=N&street=S] (write delegation) *)

val app_name : string
val map_slot : string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result

val publish_map_module :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t -> name:string ->
  evil:bool -> (W5_platform.App_registry.app, string) result
(** [evil:true] publishes a renderer that also tries to stash every
    address it sees into its developer's scratch directory — the
    exfiltration staging today's web cannot prevent. On W5 the stash
    attempt is {e denied by the kernel}: a process tainted with the
    viewer's tag cannot write into an untainted directory at all
    (exercised by tests, which assert both the denial and that the map
    still renders). *)

val geocode : string -> int * int
