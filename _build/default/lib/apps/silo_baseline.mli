(** "Today's Web sites" — the Figure 1 baseline.

    A deliberately minimal model of the pre-W5 world: each site is a
    silo that owns its users' data outright, with no enforcement
    layer between application logic and the data. Used by the F1/F2
    experiments to demonstrate, side by side with the W5 platform:

    - a malicious (or merely greedy) application exports anything it
      likes ({!thief_export} always succeeds);
    - moving to a competitor means manually re-entering everything
      ({!migrate} returns the re-upload count — the "barrier to
      entry");
    - the same preference typed into N sites is N copies
      ({!duplication_factor}). *)

type site

val create_site : string -> site
val site_name : site -> string

val set_data : site -> user:string -> key:string -> value:string -> unit
val get_data : site -> user:string -> key:string -> string option
val users : site -> string list
val data_of : site -> user:string -> (string * string) list

val thief_export : site -> user:string -> string
(** What a malicious app emails home: everything. There is no
    mechanism to stop it — only trust. *)

val privacy_setting : site -> user:string -> honored:bool -> string option
(** Today's "privacy settings": the data is returned anyway when the
    site chooses not to honor the checkbox ([honored:false]),
    because nothing enforces it. [None] when honored. *)

val migrate : from_site:site -> to_site:site -> user:string -> int
(** Copy a user's data by "manual re-upload"; returns how many items
    the user had to re-enter. *)

val duplication_factor : site list -> user:string -> key:string -> int
(** How many sites hold their own copy of the same datum. *)
