(** The adversarial application battery (§3 "Securing data": "Bad
    developers might upload applications designed to steal data,
    maliciously delete it, vandalize it, or misrepresent it").

    Each handler is a genuine attack written against the public
    syscall API; the test suite runs them and asserts on what the
    platform lets through. None of them is special-cased anywhere —
    if one succeeds, the reproduction has a real bug. *)

open W5_platform

val thief_handler : App_registry.handler
(** Reads the target user's profile (tainting itself) and responds
    with it, hoping the perimeter exports it to whoever asked —
    including the thief's own developer browsing anonymously.
    Route: [?target=U]. Also attempts to copy the secret into a fresh
    world-readable file. *)

val vandal_handler : App_registry.handler
(** Attempts to overwrite the target's profile, delete their friends
    file, and relabel their data. Route: [?target=U]. Responds with a
    data-free report of which attempts the kernel allowed. *)

val hog_handler : App_registry.handler
(** Burns CPU syscalls forever (§3.5 resource allocation): dies by
    quota, never responds. *)

val spammer_handler : App_registry.handler
(** Floods the filesystem with files until the file quota kills it. *)

val hoarder_handler : App_registry.handler
(** The "anti-social" application (§3.2): stores the viewer's data in
    a scrambled proprietary format in the viewer's own space. Nothing
    in W5 prevents this — editors have to. Route:
    [POST action=import&data=D]. *)

val scramble : string -> string
(** The hoarder's "proprietary format" (an involution, so tests can
    verify the data is merely obfuscated, not protected). *)

val prober_handler : App_registry.handler
(** The covert-channel prober (§3.5): counts rows in a store
    collection with the safe query engine and tries to export the
    single resulting bit ([?collection=C]). The count taints the
    prober with every scanned row, so the bit is exportable only to
    viewers every row's owner already authorized — absence or presence
    of someone's data cannot be smuggled out as a number. *)

val publish_all :
  Platform.t -> dev:W5_difc.Principal.t ->
  (string * (App_registry.app, string) result) list
(** Publish the whole battery under one developer: [thief], [vandal],
    [hog], [spammer], [hoarder], [prober]. *)
