open W5_difc
open W5_os
open W5_platform

let thumbnail_of data =
  String.sub data 0 (min 8 (String.length data)) ^ "~thumb"

(* worker registry per platform, keyed by provider identity *)
let registries : (int, (string, Service.t) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 8

let registry_of platform =
  let key = Principal.id (Platform.provider platform) in
  match Hashtbl.find_opt registries key with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 16 in
      Hashtbl.replace registries key table;
      table

let worker_for platform ~user = Hashtbl.find_opt (registry_of platform) user

let handler ~user ctx (msg : Proc.message) =
  (* body = photo id; the write capability arrived with the message
     (recv already merged it into our set) *)
  let id = msg.Proc.body in
  let src = "/users/" ^ user ^ "/photos/" ^ id in
  let dst = src ^ ".thumb" in
  match Syscall.read_file_taint ctx src with
  | Error _ -> ()
  | Ok data -> (
      let write_tag =
        Capability.Set.to_list (Syscall.my_caps ctx)
        |> List.find_map (fun cap ->
               let tag = Capability.tag cap in
               if
                 Capability.sign cap = Capability.Plus
                 && Tag.kind tag = Tag.Integrity
               then Some tag
               else None)
      in
      match write_tag with
      | None -> ()
      | Some tag -> (
          (match Syscall.endorse_self ctx tag with Ok () | Error _ -> ());
          let labels =
            Flow.make
              ~secrecy:(Syscall.my_labels ctx).Flow.secrecy
              ~integrity:(Label.singleton tag) ()
          in
          let thumb = thumbnail_of data in
          match
            if Syscall.file_exists ctx dst then
              Syscall.write_file ctx dst ~data:thumb
            else Syscall.create_file ctx dst ~labels ~data:thumb
          with
          | Ok () | Error _ -> ()))

let install platform ~user =
  match worker_for platform ~user with
  | Some worker when Service.is_alive worker -> Ok worker
  | Some _ | None -> (
      match Platform.find_account platform user with
      | None -> Error (Os_error.Invalid ("no such user: " ^ user))
      | Some account -> (
          match
            Service.create (Platform.kernel platform)
              ~name:("thumbd:" ^ user)
              ~owner:(Platform.provider platform)
              ~labels:(Flow.make ~secrecy:(Account.secrecy_labels account) ())
              (handler ~user)
          with
          | Error _ as e -> e
          | Ok worker ->
              Hashtbl.replace (registry_of platform) user worker;
              Ok worker))

let request ctx platform ~user ~id =
  match worker_for platform ~user with
  | None -> Error (Os_error.Invalid ("no thumbnail worker for " ^ user))
  | Some worker ->
      (* delegate exactly the write capability we were dispatched with *)
      let write_caps =
        Capability.Set.of_list
          (List.filter
             (fun cap ->
               Capability.sign cap = Capability.Plus
               && Tag.kind (Capability.tag cap) = Tag.Integrity)
             (Capability.Set.to_list (Syscall.my_caps ctx)))
      in
      Syscall.send ctx ~to_:(Service.pid worker) ~grant:write_caps id

let pump_for platform ~user =
  match worker_for platform ~user with
  | None -> Error (Os_error.Invalid ("no thumbnail worker for " ^ user))
  | Some worker -> Service.deliver_pending worker
