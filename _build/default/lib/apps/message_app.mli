(** Private messaging over the labeled object store.

    Demonstrates the §3.5 database story at the application layer:
    message objects live in a shared collection per recipient and are
    listed through the covert-channel-safe {!W5_store.Query} engine —
    the inbox view taints the reader with every row scanned, so even a
    hostile inbox UI cannot signal the presence of messages it was not
    supposed to surface.

    A message from A to B is labeled with {e both} users' secrecy tags
    (it is A's words about B's correspondence): reading it is free for
    any app, exporting it to B's browser needs A's declassifier (and
    vice versa) — typically the senders install a [correspondents]
    group or [friends_only] declassifier.

    Routes:
    - [POST action=send&to=U&body=B]
    - [?action=inbox] — the viewer's messages (safe query)
    - [?action=from&sender=U] — filter by sender *)

val app_name : string
val inbox_collection : string -> string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
