(** Blogging over the same labeled storage as every other app — the
    point of commingling (§1): one user's photos, friend list and blog
    live on one platform and any app the user chose can work on them.

    Entries are records under [/users/<u>/blog/<id>].

    Comments are cross-user data: a comment on U's entry is written by
    its commenter, stored in the object store under the {e commenter's}
    secrecy label, and listed with the taint-joining query engine — so
    even the entry's author sees a comment only if its writer's
    declassifier clears the export. Nobody's words are hostage to the
    page they appear on.

    Routes:
    - [POST action=post&id=I&title=T&body=B] (write delegation)
    - [POST action=comment&user=U&id=I&text=T] — comment on U's entry
    - [?action=read&user=U] — render all of U's entries with comments
    - [?action=read&user=U&id=I] — one entry *)

val app_name : string
val comments_collection : author:string -> entry:string -> string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
