(** A calendar with busy/free sharing — an "idiosyncratic" policy
    (§3.1) built from stock parts.

    Events live under [/users/<u>/calendar/<id>]. The week view prints
    each event's time slot in the clear but wraps the {e title} in the
    platform's sensitive-span markers. The owner sees everything (the
    perimeter never routes an owner's data through declassifiers); a
    friend whose export passes through
    [Declassifier.redacting friends_only] sees when the owner is busy
    but not why. No calendar-specific code exists in the declassifier,
    and no declassifier-specific code beyond the marker helper exists
    in the calendar.

    Routes:
    - [POST action=add&id=I&title=T&day=D&start=H&len=N] (write
      delegation; day 0-6, hours 0-23)
    - [?action=week&user=U] — the week view *)

val app_name : string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
