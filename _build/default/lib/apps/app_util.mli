(** Shared helpers for developer-contributed application code.

    Everything here runs {e inside} an app process: it only touches
    the world through {!W5_os.Syscall}, so it carries no privilege of
    its own — it is convenience, not TCB. *)

open W5_os
open W5_store
open W5_platform

val user_dir : string -> string
val user_file : string -> string -> string

val read_record :
  Kernel.ctx -> user:string -> file:string -> (Record.t, Os_error.t) result
(** Tainting read + decode of [/users/<user>/<file>]. *)

val write_record :
  Kernel.ctx -> user:string -> file:string -> labels:W5_difc.Flow.labels ->
  Record.t -> (unit, Os_error.t) result
(** Create-or-overwrite. The caller must already satisfy the write
    protection (hold and have endorsed the user's write tag). *)

val friends_of : Kernel.ctx -> user:string -> string list
(** The user's friend list; empty on any error. *)

val respond_page :
  Kernel.ctx -> title:string -> string -> unit
(** Wrap in an HTML page and respond; ignores secondary errors (an app
    that dies mid-respond is just an app with no response). *)

val respond_error : Kernel.ctx -> string -> unit

val viewer_or_respond : Kernel.ctx -> App_registry.env -> string option
(** The authenticated user, or [None] after responding with a login
    prompt. *)

val endorse_write :
  Kernel.ctx -> App_registry.env -> user:string -> bool
(** Endorse the caller's process with [user]'s write tag if the
    gateway granted the capability. Returns success. Apps call this
    immediately before writing user data. *)

val list_user_files : Kernel.ctx -> user:string -> sub:string -> string list
(** Names under [/users/<user>/<sub>]; empty on any error. *)

val user_data_labels :
  Kernel.ctx -> user:string -> W5_difc.Flow.labels option
(** The labels a fresh object owned by [user] should carry: the
    secrecy of the user's home directory plus, if the caller holds the
    user's delegated write capability, the user's write tag for
    integrity. *)
