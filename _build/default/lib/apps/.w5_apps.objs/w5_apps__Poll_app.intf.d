lib/apps/poll_app.mli: W5_difc W5_platform
