lib/apps/thumb_service.ml: Account Capability Flow Hashtbl Label List Os_error Platform Principal Proc Service String Syscall Tag W5_difc W5_os W5_platform
