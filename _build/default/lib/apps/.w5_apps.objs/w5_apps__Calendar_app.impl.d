lib/apps/calendar_app.ml: App_registry App_util Array Declassifier Html List Option Os_error Platform Printf Record Request String Syscall W5_http W5_os W5_platform W5_store
