lib/apps/photo_app.mli: W5_difc W5_platform
