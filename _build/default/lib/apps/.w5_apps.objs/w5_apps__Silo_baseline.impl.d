lib/apps/silo_baseline.ml: Hashtbl List Option String
