lib/apps/app_util.ml: App_registry Capability Flow Fs Html Label List Os_error Record Result Syscall Tag W5_difc W5_http W5_os W5_platform W5_store
