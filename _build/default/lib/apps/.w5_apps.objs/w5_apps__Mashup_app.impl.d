lib/apps/mashup_app.ml: App_registry App_util Array Hashtbl Html List Option Os_error Platform Principal Printf Record Request String Syscall Uri W5_difc W5_http W5_os W5_platform W5_store
