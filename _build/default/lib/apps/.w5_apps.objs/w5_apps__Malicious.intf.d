lib/apps/malicious.mli: App_registry Platform W5_difc W5_platform
