lib/apps/silo_baseline.mli:
