lib/apps/dating_app.ml: App_registry App_util Html Int List Os_error Platform Printf Record Request String Syscall W5_http W5_os W5_platform W5_store
