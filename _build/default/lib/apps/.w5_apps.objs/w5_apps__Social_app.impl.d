lib/apps/social_app.ml: App_registry App_util Html List Os_error Platform Record Request Syscall W5_http W5_os W5_platform W5_store
