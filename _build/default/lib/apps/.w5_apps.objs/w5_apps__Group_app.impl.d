lib/apps/group_app.ml: App_registry App_util Capability Flow Fs Group Html Label List Os_error Platform Record Request String Syscall Tag W5_difc W5_http W5_os W5_platform W5_store
