lib/apps/malicious.ml: App_registry App_util Char Html List Os_error Platform Printf Request String Syscall W5_difc W5_http W5_os W5_platform W5_store
