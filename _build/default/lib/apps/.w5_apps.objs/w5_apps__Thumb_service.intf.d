lib/apps/thumb_service.mli: Platform W5_os W5_platform
