lib/apps/group_app.mli: W5_difc W5_platform
