lib/apps/message_app.mli: W5_difc W5_platform
