lib/apps/photo_app.ml: App_registry App_util Html List Os_error Platform Request String Syscall Thumb_service Uri W5_http W5_os W5_platform
