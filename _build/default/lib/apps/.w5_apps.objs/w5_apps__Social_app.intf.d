lib/apps/social_app.mli: W5_difc W5_platform
