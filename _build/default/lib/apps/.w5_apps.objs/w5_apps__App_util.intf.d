lib/apps/app_util.mli: App_registry Kernel Os_error Record W5_difc W5_os W5_platform W5_store
