lib/apps/dating_app.mli: W5_difc W5_platform
