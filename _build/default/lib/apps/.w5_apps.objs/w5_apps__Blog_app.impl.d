lib/apps/blog_app.ml: App_registry App_util Fs Html List Obj_store Os_error Platform Printf Query Record Request String Syscall W5_difc W5_http W5_os W5_platform W5_store
