lib/apps/poll_app.ml: App_registry App_util Declassifier Flow Fs Hashtbl Html List Obj_store Option Os_error Platform Printf Query Record Request Syscall W5_difc W5_http W5_os W5_platform W5_store
