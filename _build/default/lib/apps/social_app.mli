(** The social-networking application (§3.1's running example).

    Routes (all under the app's own URL prefix):
    - [?user=U] — render U's profile page (tainted by U's tags; the
      perimeter and U's declassifier decide who may actually see it)
    - [POST action=add_friend&friend=F] — append F to the viewer's
      friend list (requires write delegation)
    - [POST action=remove_friend&friend=F] — unfriend; the friends-only
      declassifier reads the list live, so F's access ends immediately
    - [POST action=set_profile&field=K&value=V] — edit the viewer's
      profile (requires write delegation)

    The app is deliberately ordinary code: it reads whatever it wants
    (tainting itself), writes where it has been delegated, and never
    holds an export privilege. *)

val app_name : string
val handler : W5_platform.App_registry.handler

val publish :
  W5_platform.Platform.t -> dev:W5_difc.Principal.t ->
  (W5_platform.App_registry.app, string) result
(** Publish as ["<dev>/social"], version 1.0, open source. *)
