type t = {
  editor_name : string;
  mutable endorsements : (string * string) list;
  mutable antisocial : (string * string) list;
  mutable subscribers : string list;
}

let create editor_name =
  { editor_name; endorsements = []; antisocial = []; subscribers = [] }

let name t = t.editor_name

let endorse t ~app ~reason =
  t.endorsements <- (app, reason) :: List.remove_assoc app t.endorsements

let endorsed t ~app = List.mem_assoc app t.endorsements
let endorsement_reason t ~app = List.assoc_opt app t.endorsements
let endorsements t = t.endorsements

let flag_antisocial t ~app ~reason =
  t.antisocial <- (app, reason) :: List.remove_assoc app t.antisocial

let flagged t ~app = List.mem_assoc app t.antisocial
let flags t = t.antisocial

let subscribe t ~user =
  if not (List.mem user t.subscribers) then
    t.subscribers <- user :: t.subscribers

let subscriber_count t = List.length t.subscribers
let reputation t = log (1.0 +. float_of_int (subscriber_count t))
