(** W5 editors (§3.2): parties "who collect, audit and vet software
    collections that are compatible and dependable".

    An editor endorses apps it has audited, flags anti-social ones
    (proprietary formats, §3.2), and accumulates reputation as users
    subscribe. Editors are advisory — they feed {!Code_search}
    scoring, never enforcement. *)

type t

val create : string -> t
val name : t -> string

val endorse : t -> app:string -> reason:string -> unit
val endorsed : t -> app:string -> bool
val endorsement_reason : t -> app:string -> string option
val endorsements : t -> (string * string) list

val flag_antisocial : t -> app:string -> reason:string -> unit
val flagged : t -> app:string -> bool
val flags : t -> (string * string) list

val subscribe : t -> user:string -> unit
val subscriber_count : t -> int

val reputation : t -> float
(** [log (1 + subscribers)] — a popularity-mined trust weight. *)
