(** The editors, as a browsable W5 application (§3.2: "editors …
    establish reputations based on various popularity metrics mined
    from users' preferences").

    Publishes ["<dev>/editors"]. Pages are public (no user data);
    subscription is the one mutating action and requires a login —
    each subscription feeds the editor's reputation, which in turn
    weights {!Code_search} scoring.

    Routes:
    - [GET] — all editors with reputation and subscriber counts
    - [GET ?editor=E] — E's endorsements and anti-social flags
    - [POST action=subscribe&editor=E] — follow an editor *)

open W5_platform

val publish :
  Platform.t -> dev:W5_difc.Principal.t -> editors:Editor.t list ->
  (App_registry.app, string) Stdlib.result
