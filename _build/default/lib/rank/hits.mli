(** Kleinberg's HITS over a {!Depgraph.t} — the ranking ablation for
    the code-search design choice in DESIGN.md §5.

    Where PageRank assigns one score, HITS separates {e authorities}
    (modules many good hubs import — trustworthy libraries) from
    {e hubs} (modules that import many good authorities — well-built
    applications). The ablation bench and tests compare authority
    ordering against PageRank ordering on the same graphs. *)

type scores = {
  authority : (string * float) list;  (** descending, ties by name *)
  hub : (string * float) list;
}

val compute : ?epsilon:float -> ?max_iterations:int -> Depgraph.t -> scores
(** Power iteration with L2 normalization; defaults: epsilon 1e-10,
    100 iterations. Empty graph yields empty lists. *)

val authority_of : scores -> string -> float
val hub_of : scores -> string -> float
