(** PageRank over a {!Depgraph.t}, "inspired by the PageRank algorithm
    for Web pages" (§3.2): the structure of the dependency graph
    infers which modules developers collectively trust.

    Standard power iteration with uniform teleportation; dangling
    nodes (no outgoing edges) redistribute their mass uniformly.
    Scores sum to 1 (within [epsilon]). *)

type scores = (string * float) list
(** Sorted by descending score, ties broken by name. *)

val compute :
  ?damping:float -> ?epsilon:float -> ?max_iterations:int -> Depgraph.t ->
  scores
(** Defaults: damping 0.85, epsilon 1e-10, 100 iterations. An empty
    graph yields []. *)

val score_of : scores -> string -> float
(** 0.0 for unknown nodes. *)

val iterations_to_converge :
  ?damping:float -> ?epsilon:float -> Depgraph.t -> int
(** How many iterations the power method needed — the ablation bench
    for ranking stability. *)
