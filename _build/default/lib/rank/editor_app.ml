open W5_platform

let find_editor editors name =
  List.find_opt (fun e -> Editor.name e = name) editors

let render_index editors =
  W5_http.Html.ul
    (List.map
       (fun e ->
         W5_http.Html.text
           (Printf.sprintf "%s — reputation %.2f (%d subscribers)"
              (Editor.name e) (Editor.reputation e) (Editor.subscriber_count e)))
       editors)

let render_editor e =
  let section title items =
    W5_http.Html.element "h2" (W5_http.Html.text title)
    ^ W5_http.Html.ul
        (List.map
           (fun (app, reason) ->
             W5_http.Html.text (Printf.sprintf "%s — %s" app reason))
           items)
  in
  W5_http.Html.element "h1" (W5_http.Html.text (Editor.name e))
  ^ section "endorsements" (Editor.endorsements e)
  ^ section "anti-social flags" (Editor.flags e)

let publish platform ~dev ~editors =
  let handler ctx (env : App_registry.env) =
    let request = env.App_registry.request in
    let respond body =
      ignore
        (W5_os.Syscall.respond ctx (W5_http.Html.page ~title:"editors" body))
    in
    match W5_http.Request.param_or request "action" ~default:"view" with
    | "subscribe" -> (
        match (env.App_registry.viewer, W5_http.Request.param request "editor")
        with
        | None, _ -> respond (W5_http.Html.text "please log in")
        | _, None -> respond (W5_http.Html.text "editor required")
        | Some user, Some name -> (
            match find_editor editors name with
            | None -> respond (W5_http.Html.text ("no such editor: " ^ name))
            | Some e ->
                Editor.subscribe e ~user;
                respond (W5_http.Html.text ("subscribed to " ^ name))))
    | _ -> (
        match W5_http.Request.param request "editor" with
        | None -> respond (render_index editors)
        | Some name -> (
            match find_editor editors name with
            | None -> respond (W5_http.Html.text ("no such editor: " ^ name))
            | Some e -> respond (render_editor e)))
  in
  App_registry.publish (Platform.registry platform) ~dev ~name:"editors"
    ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "editor_app.ml: browsable editorial endorsements and flags; \
          subscriptions feed reputations")
    handler
