open W5_platform

type result = {
  app_id : string;
  total : float;
  pagerank : float;
  popularity : float;
  editorial : float;
  auditable : bool;
  flagged_by : string list;
}

let graph_of_registry registry =
  let graph =
    Depgraph.union
      (Depgraph.of_edges (App_registry.import_edges registry))
      (Depgraph.of_edges (App_registry.embed_edges registry))
  in
  List.iter (Depgraph.add_node graph) (App_registry.list_ids registry);
  graph

let score_all ?(editors = []) registry =
  let ranks = Pagerank.compute (graph_of_registry registry) in
  let results =
    List.map
      (fun app_id ->
        let pagerank = Pagerank.score_of ranks app_id in
        let popularity =
          log (1.0 +. float_of_int (App_registry.installs registry app_id))
        in
        let editorial =
          List.fold_left
            (fun acc editor ->
              let weight = Editor.reputation editor in
              let acc =
                if Editor.endorsed editor ~app:app_id then acc +. weight
                else acc
              in
              if Editor.flagged editor ~app:app_id then acc -. (2.0 *. weight)
              else acc)
            0.0 editors
        in
        let auditable =
          App_registry.source_of registry ~id:app_id () <> None
        in
        let flagged_by =
          List.filter_map
            (fun editor ->
              if Editor.flagged editor ~app:app_id then
                Some (Editor.name editor)
              else None)
            editors
        in
        let total =
          (10.0 *. pagerank) +. (0.5 *. popularity) +. editorial
          +. (if auditable then 0.1 else 0.0)
        in
        { app_id; total; pagerank; popularity; editorial; auditable; flagged_by })
      (App_registry.list_ids registry)
  in
  List.sort
    (fun a b ->
      match Float.compare b.total a.total with
      | 0 -> String.compare a.app_id b.app_id
      | c -> c)
    results

let contains_ci haystack needle =
  let h = String.lowercase_ascii haystack
  and n = String.lowercase_ascii needle in
  let hn = String.length h and nn = String.length n in
  if nn = 0 then true
  else
    let rec scan i = i + nn <= hn && (String.sub h i nn = n || scan (i + 1)) in
    scan 0

let search ?editors registry ~query =
  List.filter (fun r -> contains_ci r.app_id query) (score_all ?editors registry)

let publish_search_app platform ~dev ?(editors = []) () =
  let registry = Platform.registry platform in
  let handler ctx (env : App_registry.env) =
    let query =
      W5_http.Request.param_or env.App_registry.request "q" ~default:""
    in
    let results = search ~editors registry ~query in
    let rows =
      List.map
        (fun r ->
          Printf.sprintf "%s (score %.4f)%s%s" r.app_id r.total
            (if r.auditable then " [auditable]" else "")
            (match r.flagged_by with
            | [] -> ""
            | names -> " FLAGGED by " ^ String.concat ", " names))
        results
    in
    let body =
      W5_http.Html.element "h1"
        (W5_http.Html.text ("code search: " ^ if query = "" then "(all)" else query))
      ^ W5_http.Html.ul (List.map W5_http.Html.text rows)
    in
    ignore (W5_os.Syscall.respond ctx (W5_http.Html.page ~title:"code search" body))
  in
  App_registry.publish registry ~dev ~name:"search" ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "code_search.ml: ranks the live registry; reads no user data")
    handler

let vet_platform ~editors platform =
  let registry = Platform.registry platform in
  let vetted =
    List.filter
      (fun app_id ->
        List.exists (fun e -> Editor.endorsed e ~app:app_id) editors
        && not (List.exists (fun e -> Editor.flagged e ~app:app_id) editors))
      (App_registry.list_ids registry)
  in
  Platform.set_vetted platform vetted;
  List.length vetted

let rank_of results app_id =
  let rec find i = function
    | [] -> None
    | r :: _ when r.app_id = app_id -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 1 results
