(** W5 "code search" (§3.2): rank the platform's modules so users know
    which code to invoke — and, more importantly, which code to trust
    with export and write privileges.

    The composite score mirrors the paper's four trust sources:
    - {b dependency structure}: PageRank over import + embed edges
      ("applications written by top-ranked developers would receive
      top placement");
    - {b popularity}: install counts;
    - {b editors}: endorsements add reputation-weighted bonus,
      anti-social flags subtract it;
    - {b audit}: open-source apps get a small visibility bonus (their
      code can actually be audited).

    Scores are advisory; nothing here touches enforcement. *)

open W5_platform

type result = {
  app_id : string;
  total : float;
  pagerank : float;
  popularity : float;
  editorial : float;
  auditable : bool;
  flagged_by : string list;
}

val graph_of_registry : App_registry.t -> Depgraph.t
(** Union of the registry's import and embed edges, plus isolated
    published apps as bare nodes. *)

val score_all :
  ?editors:Editor.t list -> App_registry.t -> result list
(** All registered apps, best first. *)

val search :
  ?editors:Editor.t list -> App_registry.t -> query:string -> result list
(** Case-insensitive substring match on the app id, ranked. *)

val rank_of : result list -> string -> int option
(** 1-based position of an app in a result list. *)

val publish_search_app :
  Platform.t -> dev:W5_difc.Principal.t -> ?editors:Editor.t list -> unit ->
  (App_registry.app, string) Stdlib.result
(** Code search is itself just another W5 application: publishes
    ["<dev>/search"] whose handler ranks the live registry and renders
    results for [?q=…]. It reads no user data, so its pages are public
    (exportable to anyone). *)

val vet_platform : editors:Editor.t list -> Platform.t -> int
(** Feed the provider's vetted-software list (used by integrity
    protection, §3.1) from editorial judgment: every registered app
    endorsed by at least one editor and flagged by none becomes
    vetted. Returns how many apps are vetted afterwards. *)
