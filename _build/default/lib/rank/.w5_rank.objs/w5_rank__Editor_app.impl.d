lib/rank/editor_app.ml: App_registry Editor List Platform Printf W5_http W5_os W5_platform
