lib/rank/hits.mli: Depgraph
