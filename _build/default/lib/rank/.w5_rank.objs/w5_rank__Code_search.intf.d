lib/rank/code_search.mli: App_registry Depgraph Editor Platform Stdlib W5_difc W5_platform
