lib/rank/depgraph.mli:
