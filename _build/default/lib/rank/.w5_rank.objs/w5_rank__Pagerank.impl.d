lib/rank/pagerank.ml: Array Depgraph Float Hashtbl List Option String
