lib/rank/editor_app.mli: App_registry Editor Platform Stdlib W5_difc W5_platform
