lib/rank/editor.ml: List
