lib/rank/hits.ml: Array Depgraph Float Hashtbl List Option String
