lib/rank/editor.mli:
