lib/rank/code_search.ml: App_registry Depgraph Editor Float List Pagerank Platform Printf String W5_http W5_os W5_platform
