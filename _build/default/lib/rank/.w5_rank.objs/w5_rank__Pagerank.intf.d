lib/rank/pagerank.mli: Depgraph
