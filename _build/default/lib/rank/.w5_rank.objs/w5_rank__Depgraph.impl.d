lib/rank/depgraph.ml: Hashtbl List Option Set String
