type kind =
  | Cpu
  | Memory
  | Disk
  | Messages
  | Files
  | Processes

let kind_to_string = function
  | Cpu -> "cpu"
  | Memory -> "memory"
  | Disk -> "disk"
  | Messages -> "messages"
  | Files -> "files"
  | Processes -> "processes"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type limits = {
  cpu : int;
  memory : int;
  disk : int;
  messages : int;
  files : int;
  processes : int;
}

let unlimited =
  {
    cpu = max_int;
    memory = max_int;
    disk = max_int;
    messages = max_int;
    files = max_int;
    processes = max_int;
  }

let default_app_limits =
  {
    cpu = 100_000;
    memory = 16 * 1024 * 1024;
    disk = 64 * 1024 * 1024;
    messages = 10_000;
    files = 10_000;
    processes = 64;
  }

let make_limits ?(cpu = max_int) ?(memory = max_int) ?(disk = max_int)
    ?(messages = max_int) ?(files = max_int) ?(processes = max_int) () =
  { cpu; memory; disk; messages; files; processes }

type usage = {
  mutable u_cpu : int;
  mutable u_memory : int;
  mutable u_disk : int;
  mutable u_messages : int;
  mutable u_files : int;
  mutable u_processes : int;
}

let fresh_usage () =
  {
    u_cpu = 0;
    u_memory = 0;
    u_disk = 0;
    u_messages = 0;
    u_files = 0;
    u_processes = 0;
  }

let used u = function
  | Cpu -> u.u_cpu
  | Memory -> u.u_memory
  | Disk -> u.u_disk
  | Messages -> u.u_messages
  | Files -> u.u_files
  | Processes -> u.u_processes

let limit_of l = function
  | Cpu -> l.cpu
  | Memory -> l.memory
  | Disk -> l.disk
  | Messages -> l.messages
  | Files -> l.files
  | Processes -> l.processes

let bump u k n =
  match k with
  | Cpu -> u.u_cpu <- u.u_cpu + n
  | Memory -> u.u_memory <- u.u_memory + n
  | Disk -> u.u_disk <- u.u_disk + n
  | Messages -> u.u_messages <- u.u_messages + n
  | Files -> u.u_files <- u.u_files + n
  | Processes -> u.u_processes <- u.u_processes + n

let charge u l k n =
  bump u k n;
  if used u k > limit_of l k then Error k else Ok ()

let remaining u l k =
  let r = limit_of l k - used u k in
  if r < 0 then 0 else r

let pp_usage fmt u =
  Format.fprintf fmt
    "cpu=%d mem=%d disk=%d msgs=%d files=%d procs=%d" u.u_cpu u.u_memory
    u.u_disk u.u_messages u.u_files u.u_processes
