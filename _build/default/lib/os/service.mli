(** Long-lived, message-driven processes (Asbestos-style event
    processes).

    A service is a process that never exits: it sits on its mailbox
    and handles one message at a time under its own labels and
    capabilities. Senders are subject to the ordinary IPC flow check,
    so a service's {e label} is its access-control policy: a
    bottom-labeled service accepts only untainted mail, a service
    running at a user's secrecy label can receive that user's private
    notifications and nothing less tainted can learn even their
    arrival rate.

    Handlers run only when the kernel pumps the service
    ({!deliver_pending} / {!pump}) — everything stays deterministic. *)

open W5_difc

type t

type handler = Kernel.ctx -> Proc.message -> unit

val create :
  Kernel.t -> name:string -> owner:Principal.t -> ?labels:Flow.labels ->
  ?caps:Capability.Set.t -> ?limits:Resource.limits -> handler ->
  (t, Os_error.t) result
(** The backing process stays alive until {!shutdown}; the default
    limits are the platform's app limits. *)

val pid : t -> int
val proc : t -> Proc.t
val is_alive : t -> bool

val pending : t -> int
(** Messages waiting in the mailbox. *)

val deliver_pending : t -> (int, Os_error.t) result
(** Run the handler on every queued message (messages the service may
    not absorb are dropped by the ordinary [recv] rules). Returns how
    many messages were handled. A handler exception or quota kill
    stops delivery and kills the service. *)

val handled : t -> int
(** Total messages handled over the service's lifetime. *)

val pump : t list -> (int, Os_error.t) result
(** One round of {!deliver_pending} over each service; total handled. *)

val shutdown : t -> unit
