(** The error type shared by every kernel service and syscall. *)

open W5_difc

type t =
  | Denied of Flow.denial        (** an information-flow check failed *)
  | Not_found of string          (** no such path / object *)
  | Already_exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Quota_exceeded of Resource.kind
  | No_such_process of int
  | Dead_process of int
  | No_such_gate of string
  | Permission of string         (** a non-IFC authorization failure *)
  | Invalid of string            (** malformed argument *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val is_denied : t -> bool
(** True for IFC denials specifically — what the adversarial test
    battery asserts on. *)
