lib/os/proc.mli: Capability Flow Format Principal Queue Resource W5_difc
