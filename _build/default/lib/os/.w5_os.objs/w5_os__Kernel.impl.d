lib/os/kernel.ml: Audit Capability Flow Fs Hashtbl Int List Os_error Principal Printexc Proc Queue Resource Result String W5_difc
