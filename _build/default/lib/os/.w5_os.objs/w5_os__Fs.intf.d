lib/os/fs.mli: Flow Os_error W5_difc
