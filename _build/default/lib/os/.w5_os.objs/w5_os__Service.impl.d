lib/os/service.ml: Capability Flow Kernel List Os_error Printexc Proc Queue Resource Result Syscall W5_difc
