lib/os/resource.mli: Format
