lib/os/syscall.mli: Capability Flow Fs Kernel Label Os_error Principal Proc Resource Tag W5_difc
