lib/os/resource.ml: Format
