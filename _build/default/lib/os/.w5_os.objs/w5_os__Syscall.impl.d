lib/os/syscall.ml: Audit Capability Flow Fs Kernel Label Option Os_error Proc Queue Resource Result String Tag W5_difc
