lib/os/os_error.ml: Flow Format Resource W5_difc
