lib/os/audit.ml: Flow Format List Resource Tag W5_difc
