lib/os/proc.ml: Capability Flow Format Principal Queue Resource W5_difc
