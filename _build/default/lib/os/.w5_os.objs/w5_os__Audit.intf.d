lib/os/audit.mli: Flow Format Resource Tag W5_difc
