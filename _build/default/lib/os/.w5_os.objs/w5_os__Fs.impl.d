lib/os/fs.ml: Array Buffer Char Flow Hashtbl Label List Option Os_error Printf Result String Tag W5_difc
