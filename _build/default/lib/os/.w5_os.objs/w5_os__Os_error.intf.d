lib/os/os_error.mli: Flow Format Resource W5_difc
