lib/os/service.mli: Capability Flow Kernel Os_error Principal Proc Resource W5_difc
