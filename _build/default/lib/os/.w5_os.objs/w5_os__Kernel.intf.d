lib/os/kernel.mli: Audit Capability Flow Fs Os_error Principal Proc Resource W5_difc
