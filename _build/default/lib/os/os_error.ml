open W5_difc

type t =
  | Denied of Flow.denial
  | Not_found of string
  | Already_exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Quota_exceeded of Resource.kind
  | No_such_process of int
  | Dead_process of int
  | No_such_gate of string
  | Permission of string
  | Invalid of string

let pp fmt = function
  | Denied d -> Format.fprintf fmt "denied: %a" Flow.pp_denial d
  | Not_found p -> Format.fprintf fmt "not found: %s" p
  | Already_exists p -> Format.fprintf fmt "already exists: %s" p
  | Not_a_directory p -> Format.fprintf fmt "not a directory: %s" p
  | Is_a_directory p -> Format.fprintf fmt "is a directory: %s" p
  | Quota_exceeded k -> Format.fprintf fmt "quota exceeded: %a" Resource.pp_kind k
  | No_such_process pid -> Format.fprintf fmt "no such process: %d" pid
  | Dead_process pid -> Format.fprintf fmt "dead process: %d" pid
  | No_such_gate g -> Format.fprintf fmt "no such gate: %s" g
  | Permission m -> Format.fprintf fmt "permission: %s" m
  | Invalid m -> Format.fprintf fmt "invalid: %s" m

let to_string e = Format.asprintf "%a" pp e
let equal a b = to_string a = to_string b
let is_denied = function Denied _ -> true | _ -> false
