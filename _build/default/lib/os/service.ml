open W5_difc

type handler = Kernel.ctx -> Proc.message -> unit

type t = {
  kernel : Kernel.t;
  service_proc : Proc.t;
  handler : handler;
  mutable total_handled : int;
}

let create kernel ~name ~owner ?(labels = Flow.bottom)
    ?(caps = Capability.Set.empty) ?(limits = Resource.default_app_limits)
    handler =
  (* The body never runs: the service is driven by deliver_pending and
     must stay Runnable (alive) so that senders can reach its mailbox. *)
  match Kernel.spawn kernel ~name ~owner ~labels ~caps ~limits (fun _ -> ()) with
  | Error _ as e -> e
  | Ok service_proc ->
      Ok { kernel; service_proc; handler; total_handled = 0 }

let pid t = t.service_proc.Proc.pid
let proc t = t.service_proc
let is_alive t = Proc.is_alive t.service_proc
let pending t = Queue.length t.service_proc.Proc.mailbox
let handled t = t.total_handled

let deliver_pending t =
  if not (Proc.is_alive t.service_proc) then
    Error (Os_error.Dead_process t.service_proc.Proc.pid)
  else begin
    let ctx = { Kernel.kernel = t.kernel; proc = t.service_proc } in
    let count = ref 0 in
    let outcome =
      try
        let rec drain () =
          match Syscall.recv ctx with
          | Ok None -> Ok ()
          | Ok (Some msg) ->
              t.handler ctx msg;
              incr count;
              t.total_handled <- t.total_handled + 1;
              drain ()
          | Error (Os_error.Denied _) ->
              (* unabsorbable message was dropped by recv; keep going *)
              drain ()
          | Error _ as e -> Result.map (fun _ -> ()) e
        in
        drain ()
      with
      | Kernel.Quota_kill kind ->
          Proc.kill t.service_proc
            ~reason:("quota: " ^ Resource.kind_to_string kind);
          Error (Os_error.Quota_exceeded kind)
      | exn ->
          let reason = "uncaught: " ^ Printexc.to_string exn in
          Proc.kill t.service_proc ~reason;
          Error (Os_error.Invalid reason)
    in
    Result.map (fun () -> !count) outcome
  end

let pump services =
  List.fold_left
    (fun acc service ->
      match acc with
      | Error _ as e -> e
      | Ok total ->
          Result.map (fun n -> total + n) (deliver_pending service))
    (Ok 0) services

let shutdown t = Proc.kill t.service_proc ~reason:"shutdown"
