(** Per-process resource accounting (§3.5 "Performance and resource
    allocation").

    Every process carries a usage counter and a set of limits; each
    syscall charges the counter. A rogue application that loops,
    floods IPC or fills the disk hits its own limits and is killed
    without affecting other processes — the simulation analogue of
    resource containers [Banga et al., OSDI 1999]. *)

(** The resources the kernel meters. *)
type kind =
  | Cpu          (** syscall ticks — every kernel crossing costs at least one *)
  | Memory       (** bytes resident in mailboxes and response buffers *)
  | Disk         (** bytes written to the labeled filesystem *)
  | Messages     (** IPC sends *)
  | Files        (** file and directory creations *)
  | Processes    (** spawned children *)

val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string

(** Hard limits; [max_int] means unlimited. *)
type limits = {
  cpu : int;
  memory : int;
  disk : int;
  messages : int;
  files : int;
  processes : int;
}

val unlimited : limits

val default_app_limits : limits
(** The sandbox the platform gives a developer-contributed app by
    default: generous enough for real work, small enough that a
    runaway loop dies quickly. *)

val make_limits :
  ?cpu:int -> ?memory:int -> ?disk:int -> ?messages:int -> ?files:int ->
  ?processes:int -> unit -> limits

(** Mutable usage counters. *)
type usage

val fresh_usage : unit -> usage
val used : usage -> kind -> int

val charge : usage -> limits -> kind -> int -> (unit, kind) result
(** [charge u l k n] adds [n] to the counter for [k]; [Error k] if the
    limit would be exceeded (the counter is still advanced so repeated
    calls keep failing). *)

val remaining : usage -> limits -> kind -> int
val pp_usage : Format.formatter -> usage -> unit
