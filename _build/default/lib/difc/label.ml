module S = Set.Make (Tag)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let add = S.add
let remove = S.remove
let mem = S.mem
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let compare = S.compare
let cardinal = S.cardinal
let fold f s acc = S.fold f s acc
let iter = S.iter
let exists = S.exists
let for_all = S.for_all
let filter = S.filter
let choose_opt = S.choose_opt

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Tag.pp)
    (S.elements s)

let to_string s = Format.asprintf "%a" pp s
