(** Principals: the entities of the W5 ecosystem (§2 of the paper).

    A principal is anything that can own tags, hold capabilities or
    appear in an audit record: end-users who store data, developers
    who contribute code, the provider itself, and external clients
    (browsers) outside the perimeter. *)

type role =
  | End_user
  | Developer
  | Provider
  | External_client  (** A browser or remote site beyond the perimeter. *)

type t

val make : role -> string -> t
(** [make role name] creates a fresh principal. Names need not be
    unique; identity is by allocation. *)

val role : t -> role
val name : t -> string
val id : t -> int
val is_external : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
