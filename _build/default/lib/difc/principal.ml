type role =
  | End_user
  | Developer
  | Provider
  | External_client

type t = {
  id : int;
  role : role;
  name : string;
}

let counter = ref 0

let make role name =
  incr counter;
  { id = !counter; role; name }

let role p = p.role
let name p = p.name
let id p = p.id
let is_external p = p.role = External_client
let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let role_string = function
  | End_user -> "user"
  | Developer -> "dev"
  | Provider -> "provider"
  | External_client -> "client"

let pp fmt p =
  Format.fprintf fmt "%s:%s#%d" (role_string p.role) p.name p.id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
