(** Opaque information-flow tags.

    A tag is the unit of data classification in W5 (following Flume
    [Krohn et al., SOSP 2007]). Every user secret, every integrity
    domain, is represented by one tag. Labels ({!Label.t}) are sets of
    tags; capabilities ({!Capability.t}) confer the right to add or
    remove a given tag from one's own label. *)

type t
(** An opaque tag. Tags are totally ordered and hashable so that they
    can populate efficient sets. *)

(** What lattice a tag participates in. A [Secrecy] tag taints data
    that must not leave the perimeter; an [Integrity] tag vouches for
    data provenance and gates writes. *)
type kind =
  | Secrecy
  | Integrity

val fresh : ?name:string -> ?restricted:bool -> kind -> t
(** [fresh ~name kind] allocates a new, globally unique tag. [name] is
    kept only for diagnostics; two tags with the same name are still
    distinct. Allocation is deterministic within a run (a monotonic
    counter), which keeps simulations reproducible.

    [restricted] (default [false]) marks a secrecy tag as
    {e read-protected} (§3.1 "read protection"): ordinarily any
    process may taint itself with any secrecy tag, but a restricted
    tag can only be absorbed by a process holding its [t+]
    capability — so unauthorized software cannot read the data at
    all, not merely fail to export it. *)

val kind : t -> kind
(** [kind t] returns the lattice the tag belongs to. *)

val restricted : t -> bool
(** Is this a read-protected tag? *)

val name : t -> string
(** [name t] is the diagnostic name given at creation, or a generated
    ["tag#N"] placeholder. *)

val id : t -> int
(** [id t] is the unique integer identity of [t]. Exposed for stable
    serialization; reconstruct tags only through {!of_id}. *)

val of_id : int -> t option
(** The registered tag with this identity, if any — the inverse of
    {!id} for deserialization (filesystem snapshots, federation). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
