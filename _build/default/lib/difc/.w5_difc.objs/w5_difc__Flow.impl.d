lib/difc/flow.ml: Capability Format Label
