lib/difc/tag.mli: Format
