lib/difc/label.ml: Format Set Tag
