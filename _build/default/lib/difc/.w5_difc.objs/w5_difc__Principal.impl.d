lib/difc/principal.ml: Format Int Map Set
