lib/difc/capability.ml: Format Int Label Set Tag
