lib/difc/tag.ml: Format Hashtbl Int Printf
