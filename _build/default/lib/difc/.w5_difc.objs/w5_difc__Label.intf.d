lib/difc/label.mli: Format Tag
