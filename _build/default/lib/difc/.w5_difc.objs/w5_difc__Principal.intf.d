lib/difc/principal.mli: Format Map Set
