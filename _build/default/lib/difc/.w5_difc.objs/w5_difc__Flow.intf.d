lib/difc/flow.mli: Capability Format Label
