lib/difc/capability.mli: Format Label Tag
