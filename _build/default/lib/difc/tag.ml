type kind =
  | Secrecy
  | Integrity

type t = int

type meta = {
  m_name : string;
  m_kind : kind;
  m_restricted : bool;
}

(* Tag metadata lives in a side table so the tag value itself stays a
   bare integer, which keeps label-set operations allocation-free. *)
let counter = ref 0
let metas : (int, meta) Hashtbl.t = Hashtbl.create 256

let fresh ?name ?(restricted = false) k =
  incr counter;
  let id = !counter in
  let n =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "tag#%d" id
  in
  Hashtbl.replace metas id { m_name = n; m_kind = k; m_restricted = restricted };
  id

let meta t = Hashtbl.find_opt metas t

let kind t =
  match meta t with
  | Some m -> m.m_kind
  | None -> Secrecy

let restricted t =
  match meta t with
  | Some m -> m.m_restricted
  | None -> false

let name t =
  match meta t with
  | Some m -> m.m_name
  | None -> Printf.sprintf "tag#%d" t

let id t = t
let of_id i = if Hashtbl.mem metas i then Some i else None
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash

let pp fmt t =
  let k = match kind t with Secrecy -> "s" | Integrity -> "i" in
  Format.fprintf fmt "%s:%s#%d" k (name t) t
