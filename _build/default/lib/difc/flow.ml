type labels = {
  secrecy : Label.t;
  integrity : Label.t;
}

let bottom = { secrecy = Label.empty; integrity = Label.empty }

let make ?(secrecy = Label.empty) ?(integrity = Label.empty) () =
  { secrecy; integrity }

let equal_labels a b =
  Label.equal a.secrecy b.secrecy && Label.equal a.integrity b.integrity

let pp_labels fmt l =
  Format.fprintf fmt "S=%a I=%a" Label.pp l.secrecy Label.pp l.integrity

let join a b =
  {
    secrecy = Label.union a.secrecy b.secrecy;
    integrity = Label.inter a.integrity b.integrity;
  }

type denial =
  | Secrecy_violation of Label.t
  | Integrity_violation of Label.t
  | Unauthorized_add of Label.t
  | Unauthorized_drop of Label.t

let pp_denial fmt = function
  | Secrecy_violation l ->
      Format.fprintf fmt "secrecy violation: tags %a would leak" Label.pp l
  | Integrity_violation l ->
      Format.fprintf fmt "integrity violation: tags %a not vouched" Label.pp l
  | Unauthorized_add l ->
      Format.fprintf fmt "unauthorized label addition of %a" Label.pp l
  | Unauthorized_drop l ->
      Format.fprintf fmt "unauthorized label drop of %a" Label.pp l

let denial_to_string d = Format.asprintf "%a" pp_denial d

let can_flow src dst =
  Label.subset src.secrecy dst.secrecy
  && Label.subset dst.integrity src.integrity

let check_flow src dst =
  let secrecy_excess = Label.diff src.secrecy dst.secrecy in
  if not (Label.is_empty secrecy_excess) then
    Error (Secrecy_violation secrecy_excess)
  else
    let integrity_missing = Label.diff dst.integrity src.integrity in
    if not (Label.is_empty integrity_missing) then
      Error (Integrity_violation integrity_missing)
    else Ok ()

let can_flow_with ?(src_caps = Capability.Set.empty)
    ?(dst_caps = Capability.Set.empty) src dst =
  (* A tag blocks the secrecy condition only if the source cannot drop
     it and the destination cannot add it. Dually, an integrity tag
     required by the destination is satisfiable if the destination can
     drop the requirement or the source could endorse for it. *)
  let secrecy_ok =
    Label.for_all
      (fun t ->
        Label.mem t dst.secrecy
        || Capability.Set.can_drop t src_caps
        || Capability.Set.can_add t dst_caps)
      src.secrecy
  in
  let integrity_ok =
    Label.for_all
      (fun t ->
        Label.mem t src.integrity
        || Capability.Set.can_add t src_caps
        || Capability.Set.can_drop t dst_caps)
      dst.integrity
  in
  secrecy_ok && integrity_ok

let check_label_change ~caps ~old_label ~new_label =
  let added = Label.diff new_label old_label in
  let dropped = Label.diff old_label new_label in
  let bad_adds =
    Label.filter (fun t -> not (Capability.Set.can_add t caps)) added
  in
  if not (Label.is_empty bad_adds) then Error (Unauthorized_add bad_adds)
  else
    let bad_drops =
      Label.filter (fun t -> not (Capability.Set.can_drop t caps)) dropped
    in
    if not (Label.is_empty bad_drops) then Error (Unauthorized_drop bad_drops)
    else Ok ()

let check_labels_change ~caps ~old_labels ~new_labels =
  match
    check_label_change ~caps ~old_label:old_labels.secrecy
      ~new_label:new_labels.secrecy
  with
  | Error _ as e -> e
  | Ok () ->
      check_label_change ~caps ~old_label:old_labels.integrity
        ~new_label:new_labels.integrity

let raise_secrecy taint l = { l with secrecy = Label.union taint l.secrecy }

let export_blockers ~caps l =
  Label.filter (fun t -> not (Capability.Set.can_drop t caps)) l.secrecy
