module SM = Map.Make (String)

type t = int SM.t

let zero = SM.empty
let get t ~node = Option.value (SM.find_opt node t) ~default:0
let tick t ~node = SM.add node (get t ~node + 1) t
(* Zero entries are kept out of the map so that structural equality
   coincides with semantic equality (absent = 0). *)
let set t ~node count =
  if count <= 0 then SM.remove node t else SM.add node count t

let merge a b =
  SM.union (fun _ x y -> Some (max x y)) a b

type ordering =
  | Equal
  | Before
  | After
  | Concurrent

let leq a b = SM.for_all (fun node count -> count <= get b ~node) a

let compare_clocks a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let encode t =
  SM.bindings t
  |> List.filter (fun (_, count) -> count > 0)
  |> List.map (fun (node, count) -> node ^ ":" ^ string_of_int count)
  |> String.concat ","

let decode s =
  if s = "" then zero
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc component ->
           match String.index_opt component ':' with
           | None -> acc
           | Some i -> (
               let node = String.sub component 0 i in
               let count =
                 String.sub component (i + 1) (String.length component - i - 1)
               in
               match int_of_string_opt count with
               | Some n when n > 0 -> SM.add node n acc
               | Some _ | None -> acc))
         zero

let equal = SM.equal Int.equal
let pp fmt t = Format.pp_print_string fmt (encode t)
