(** Vector clocks keyed by provider name — the causality tracker for
    cross-provider replication (§3.3). *)

type t

val zero : t
val tick : t -> node:string -> t
val set : t -> node:string -> int -> t
val get : t -> node:string -> int
val merge : t -> t -> t
(** Pointwise max. *)

type ordering =
  | Equal
  | Before       (** strictly dominated by the other *)
  | After        (** strictly dominates the other *)
  | Concurrent

val compare_clocks : t -> t -> ordering

val encode : t -> string
(** ["a:3,b:1"], nodes sorted. *)

val decode : string -> t
(** Malformed components are dropped. [decode (encode c)] = [c]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
