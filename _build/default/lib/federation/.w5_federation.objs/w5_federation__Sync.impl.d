lib/federation/sync.ml: Account Capability Conflict Flow Fs Hashtbl Label List Option Os_error Platform Record Result String Syscall Vector_clock W5_difc W5_os W5_platform W5_store
