lib/federation/vector_clock.ml: Format Int List Map Option String
