lib/federation/conflict.mli: Record W5_store
