lib/federation/vector_clock.mli: Format
