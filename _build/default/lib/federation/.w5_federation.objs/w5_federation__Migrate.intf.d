lib/federation/migrate.mli: Account App_registry Platform Stdlib W5_difc W5_os W5_platform
