lib/federation/migrate.ml: Account App_registry Capability Flow Fs Label List Os_error Platform Result String Syscall W5_difc W5_os W5_platform W5_store
