lib/federation/conflict.ml: List Record String W5_store
