lib/federation/peer.mli: Platform W5_platform
