lib/federation/peer.ml: Hashtbl List Platform String Sync W5_platform
