lib/federation/sync.mli: Account Os_error Platform Record W5_os W5_platform W5_store
