(** Conflict resolution for concurrently edited user records.

    When both replicas changed since the last synchronization, the
    merge is field-wise and deterministic:
    - a field present on only one side is kept;
    - a list-valued field (heuristically: its key is [friends],
      [entries], or ends in [_list]) merges as a set union, preserving
      first-seen order;
    - otherwise the lexicographically larger value wins (arbitrary but
      symmetric, so both replicas converge without coordination). *)

open W5_store

val is_list_field : string -> bool

val merge_values : key:string -> string -> string -> string

val merge : Record.t -> Record.t -> Record.t
(** Commutative up to field order; [merge r r = r]. *)
