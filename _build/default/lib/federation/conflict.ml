open W5_store

let is_list_field key =
  key = "friends" || key = "entries"
  ||
  let suffix = "_list" in
  let kl = String.length key and sl = String.length suffix in
  kl >= sl && String.sub key (kl - sl) sl = suffix

let union_preserving_order xs ys =
  xs @ List.filter (fun y -> not (List.mem y xs)) ys

let merge_values ~key a b =
  if a = b then a
  else if is_list_field key then
    let la = if a = "" then [] else String.split_on_char ',' a in
    let lb = if b = "" then [] else String.split_on_char ',' b in
    String.concat "," (union_preserving_order la lb)
  else if String.compare a b >= 0 then a
  else b

let merge ra rb =
  let keys =
    Record.keys ra @ List.filter (fun k -> not (Record.mem ra k)) (Record.keys rb)
  in
  Record.of_fields
    (List.map
       (fun key ->
         match (Record.get ra key, Record.get rb key) with
         | Some a, Some b -> (key, merge_values ~key a b)
         | Some a, None -> (key, a)
         | None, Some b -> (key, b)
         | None, None -> (key, ""))
       keys)
