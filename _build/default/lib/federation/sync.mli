(** Cross-provider synchronization via import/export declassifiers
    (§3.3): "create import/export declassifiers that synchronize user
    data between two W5 providers. If an end-user deemed such
    applications trustworthy, it would give its privileges to data
    transfer applications on both platforms."

    A {!link} represents exactly that grant, for one user across two
    platforms: on each side the transfer agent holds the user's
    declassification capability (to export a record off the platform)
    and the user's write capability (to import the peer's copy).
    {!export_record} genuinely exercises the export privilege — it
    reads with taint, declassifies with the granted [t-], and refuses
    to hand anything over while {!W5_difc.Flow.export_blockers} is
    non-empty — so a user who never granted the capability cannot be
    synchronized, trust notwithstanding.

    Change detection uses per-file version vectors ({!Vector_clock}
    keyed by provider name, fed from filesystem versions); concurrent
    edits merge through {!Conflict}. Synchronization is convergent:
    after [sync] with no new writes, both replicas are equal and a
    second [sync] is a no-op. *)

open W5_store
open W5_platform
open W5_os

type side = {
  platform : Platform.t;
  provider_name : string;
}

(** Synchronization direction. *)
type mode =
  | Bidirectional  (** the default: edits flow both ways, conflicts merge *)
  | Mirror_a_to_b
      (** one-way backup: side B tracks side A; edits on B are
          overwritten at the next round (the paper's "mirrored across
          provider boundaries" in its simplest form) *)

type link

type stats = {
  a_to_b : int;   (** records copied from side A to side B *)
  b_to_a : int;
  merged : int;   (** concurrent edits resolved *)
  unchanged : int;
}

val establish :
  ?mode:mode -> a:side -> b:side -> user:string -> files:string list ->
  unit -> (link, string) result
(** Both platforms must already have the account (the user "linked
    accounts"). [files] are the top-level record files to mirror
    (e.g. [["profile"; "friends"]]); more can be added later. *)

val add_file : link -> string -> unit

val add_directory : link -> string -> unit
(** Mirror a whole subdirectory of the user's home (e.g. ["photos"]).
    At each {!sync} the union of both replicas' entries is expanded
    into per-file synchronization; files created on either side after
    the link was established are picked up automatically. *)

val directories : link -> string list
val files : link -> string list
val user : link -> string

val export_record :
  Platform.t -> Account.t -> file:string ->
  (Record.t * int, Os_error.t) result
(** Read + declassify one record with the user-granted privileges;
    returns the record and the filesystem version. Fails with a
    denial if the grant is missing or insufficient. *)

val sync : link -> (stats, string) result
(** One bidirectional round. Idempotent once converged. *)

val converged : link -> bool
(** Are all mirrored records byte-equal right now? *)
