(** End-user accounts.

    Creating an account mints the user's tags:
    - a {e secrecy} tag that taints everything the user stores (the
      boilerplate privacy policy hangs off this tag);
    - a {e write-protect} integrity tag that gates every mutation of
      the user's data (§3.1 "Write Protection");
    - optionally, a {e read-protect} restricted secrecy tag (§3.1
      "read protection"), minted by {!enable_read_protection}.

    The account record holds the user's full capability set (dual
    privilege over all their tags); the gateway carves out least-
    privilege subsets of it when dispatching applications. *)

open W5_difc

type t = {
  user : string;
  password : string;
  principal : Principal.t;
  secret_tag : Tag.t;
  write_tag : Tag.t;
  mutable read_tag : Tag.t option;
  mutable caps : Capability.Set.t;
  policy : Policy.t;
}

val make : user:string -> password:string -> t
(** Mints principal and tags; does not touch any filesystem. *)

val enable_read_protection : t -> Tag.t
(** Mint (or return) the account's restricted read-protection tag and
    add dual privilege over it to [caps]. *)

val owns_tag : t -> Tag.t -> bool
(** Is this one of the account's own tags? The perimeter uses this for
    the boilerplate "destined for Bob's browser" rule. *)

val secrecy_labels : t -> Label.t
(** The secrecy label user data carries: secret tag plus read tag if
    read protection is on. *)

val data_labels : t -> Flow.labels
(** Full labels for the user's stored objects: {!secrecy_labels} for
    secrecy, the write tag for integrity. *)

val verify_password : t -> string -> bool
val pp : Format.formatter -> t -> unit
