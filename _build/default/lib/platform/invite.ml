type t = {
  invite_id : string;
  from_user : string;
  to_user : string;
  app : string;
  suggest_write : bool;
  mutable accepted : bool;
}

type registry = {
  invites : (string, t) Hashtbl.t;
  mutable counter : int;
}

let create_registry () = { invites = Hashtbl.create 32; counter = 0 }

let pending registry ~to_user =
  Hashtbl.fold
    (fun _ invite acc ->
      if invite.to_user = to_user && not invite.accepted then invite :: acc
      else acc)
    registry.invites []
  |> List.sort (fun a b -> String.compare a.invite_id b.invite_id)

let send registry platform ~from_user ~to_user ~app ?(suggest_write = false) () =
  if Platform.find_account platform to_user = None then
    Error ("no such user: " ^ to_user)
  else if App_registry.find (Platform.registry platform) app = None then
    Error ("no such app: " ^ app)
  else if
    List.exists (fun i -> i.app = app) (pending registry ~to_user)
  then Error "already invited"
  else begin
    registry.counter <- registry.counter + 1;
    let invite =
      {
        invite_id = Printf.sprintf "inv-%d" registry.counter;
        from_user;
        to_user;
        app;
        suggest_write;
        accepted = false;
      }
    in
    Hashtbl.replace registry.invites invite.invite_id invite;
    Ok invite
  end

let find registry ~invite_id = Hashtbl.find_opt registry.invites invite_id

let accept registry platform ~invite_id ~to_user =
  match find registry ~invite_id with
  | None -> Error ("no such invitation: " ^ invite_id)
  | Some invite when invite.to_user <> to_user ->
      Error "not your invitation"
  | Some invite when invite.accepted -> Error "already accepted"
  | Some invite -> (
      match Platform.enable_app platform ~user:to_user ~app:invite.app with
      | Error _ as e -> e
      | Ok () ->
          if invite.suggest_write then begin
            let account = Platform.account_exn platform to_user in
            Policy.delegate_write account.Account.policy invite.app
          end;
          invite.accepted <- true;
          Ok ())

let decline registry ~invite_id ~to_user =
  match find registry ~invite_id with
  | None -> Error ("no such invitation: " ^ invite_id)
  | Some invite when invite.to_user <> to_user -> Error "not your invitation"
  | Some _ ->
      Hashtbl.remove registry.invites invite_id;
      Ok ()
