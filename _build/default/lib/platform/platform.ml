open W5_difc
open W5_os
open W5_store

type t = {
  kernel : Kernel.t;
  accounts : (string, Account.t) Hashtbl.t;
  tag_owner : (int, string) Hashtbl.t;
  registry : App_registry.t;
  sessions : W5_http.Session.t;
  provider : Principal.t;
  mutable requests_served : int;
  mutable vetted : string list;
  mutable limiter : Rate_limit.t option;
  mutable dns : W5_http.Dns.t option;
  app_limits : (string, Resource.limits) Hashtbl.t;
}

let kernel t = t.kernel
let registry t = t.registry
let sessions t = t.sessions
let provider t = t.provider
let requests_served t = t.requests_served
let count_request t = t.requests_served <- t.requests_served + 1
let vetted_apps t = t.vetted
let is_vetted t app = List.mem app t.vetted

let add_vetted t app =
  if not (List.mem app t.vetted) then t.vetted <- app :: t.vetted

let set_vetted t apps = t.vetted <- apps
let set_rate_limit t limiter = t.limiter <- limiter
let rate_limit t = t.limiter

let enable_dns t ~zone =
  let dns = W5_http.Dns.create ~zone in
  List.iter
    (fun app_id -> ignore (W5_http.Dns.register_app dns ~app_id))
    (App_registry.list_ids t.registry);
  t.dns <- Some dns;
  dns

let dns t = t.dns

let set_app_limits t ~app limits = Hashtbl.replace t.app_limits app limits

let app_limits t ~app =
  Option.value (Hashtbl.find_opt t.app_limits app)
    ~default:Resource.default_app_limits

let with_ctx t ~name ?owner ?(labels = Flow.bottom)
    ?(caps = Capability.Set.empty) ?(limits = Resource.unlimited) f =
  let owner = Option.value owner ~default:t.provider in
  match Kernel.spawn t.kernel ~name ~owner ~labels ~caps ~limits (fun _ -> ())
  with
  | Error _ as e -> e
  | Ok proc -> (
      (* Replace the no-op body: spawn queued the process but we run
         it synchronously here and capture f's value through a ref. *)
      let result = ref (Error (Os_error.Invalid "with_ctx: did not run")) in
      let ctx = { Kernel.kernel = t.kernel; proc } in
      proc.Proc.state <- Proc.Running;
      Kernel.advance_clock t.kernel;
      (try result := f ctx with
      | Kernel.Quota_kill kind ->
          Proc.kill proc ~reason:("quota: " ^ Resource.kind_to_string kind);
          result := Error (Os_error.Quota_exceeded kind)
      );
      (match proc.Proc.state with
      | Proc.Running -> proc.Proc.state <- Proc.Exited
      | Proc.Runnable | Proc.Exited | Proc.Killed _ -> ());
      !result)

let users_root = "/users"
let apps_root = "/apps"
let user_dir user = users_root ^ "/" ^ user
let user_file user file = user_dir user ^ "/" ^ file

let create ?enforcing () =
  let kernel = Kernel.create ?enforcing () in
  let t =
    {
      kernel;
      accounts = Hashtbl.create 64;
      tag_owner = Hashtbl.create 64;
      registry = App_registry.create ();
      sessions = W5_http.Session.create ();
      provider = Principal.make Principal.Provider "w5";
      requests_served = 0;
      vetted = [];
      limiter = None;
      dns = None;
      app_limits = Hashtbl.create 8;
    }
  in
  let boot =
    with_ctx t ~name:"boot" (fun ctx ->
        match Syscall.mkdir ctx users_root ~labels:Flow.bottom with
        | Error _ as e -> e
        | Ok () -> (
            match Syscall.mkdir ctx apps_root ~labels:Flow.bottom with
            | Error _ as e -> e
            | Ok () -> Obj_store.init ctx))
  in
  (match boot with
  | Ok () -> ()
  | Error e -> invalid_arg ("platform boot failed: " ^ Os_error.to_string e));
  t

let find_account t user = Hashtbl.find_opt t.accounts user

let account_exn t user =
  match find_account t user with
  | Some account -> account
  | None -> invalid_arg ("no such account: " ^ user)

let accounts t =
  Hashtbl.fold (fun _ account acc -> account :: acc) t.accounts []
  |> List.sort (fun a b -> String.compare a.Account.user b.Account.user)

let owner_of_tag t tag =
  Option.bind (Hashtbl.find_opt t.tag_owner (Tag.id tag)) (find_account t)

let register_tag_owner t tag ~user =
  Hashtbl.replace t.tag_owner (Tag.id tag) user

(* Run with the user's own authority: their labels raised enough to
   write their own files, and their full capability set. *)
let as_user t (account : Account.t) ~name f =
  let labels =
    Flow.make ~integrity:(Label.singleton account.Account.write_tag) ()
  in
  with_ctx t ~name ~owner:account.Account.principal ~labels
    ~caps:account.Account.caps f

let write_user_record t (account : Account.t) ~file record =
  let path = user_file account.Account.user file in
  let data = Record.encode record in
  as_user t account ~name:("write:" ^ path) (fun ctx ->
      if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
      else
        Syscall.create_file ctx path ~labels:(Account.data_labels account)
          ~data)

let read_user_record t (account : Account.t) ~file =
  let path = user_file account.Account.user file in
  as_user t account ~name:("read:" ^ path) (fun ctx ->
      match Syscall.read_file_taint ctx path with
      | Error _ as e -> e
      | Ok data ->
          Result.map_error (fun m -> Os_error.Invalid m) (Record.decode data))

let user_mkdir t (account : Account.t) ~dir =
  let path = user_file account.Account.user dir in
  as_user t account ~name:("mkdir:" ^ path) (fun ctx ->
      Syscall.mkdir ctx path
        ~labels:(Flow.make ~secrecy:(Account.secrecy_labels account) ()))

let delete_user_file t (account : Account.t) ~file =
  let path = user_file account.Account.user file in
  as_user t account ~name:("delete:" ^ path) (fun ctx ->
      match Syscall.add_taint ctx (Account.secrecy_labels account) with
      | Error _ as e -> e
      | Ok () -> Syscall.unlink ctx path)

let signup t ~user ~password =
  let valid_name name =
    name <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = '-')
         name
  in
  if Hashtbl.mem t.accounts user then Error (user ^ ": already registered")
  else if not (valid_name user) then Error "invalid user name"
  else begin
    let account = Account.make ~user ~password in
    Hashtbl.replace t.accounts user account;
    Hashtbl.replace t.tag_owner (Tag.id account.Account.secret_tag) user;
    Hashtbl.replace t.tag_owner (Tag.id account.Account.write_tag) user;
    let seeded =
      let home =
        with_ctx t ~name:("signup:" ^ user)
          ~owner:account.Account.principal (fun ctx ->
            Syscall.mkdir ctx (user_dir user)
              ~labels:
                (Flow.make ~secrecy:(Account.secrecy_labels account) ()))
      in
      match home with
      | Error _ as e -> e
      | Ok () -> (
          let profile =
            Record.of_fields [ ("user", user); ("display", user) ]
          in
          match write_user_record t account ~file:"profile" profile with
          | Error _ as e -> e
          | Ok () ->
              write_user_record t account ~file:"friends"
                (Record.of_fields [ ("friends", "") ]))
    in
    match seeded with
    | Ok () -> Ok account
    | Error e ->
        Hashtbl.remove t.accounts user;
        Error (Os_error.to_string e)
  end

let enable_read_protection t (account : Account.t) =
  let tag = Account.enable_read_protection account in
  Hashtbl.replace t.tag_owner (Tag.id tag) account.Account.user;
  (* Relabel the user's existing tree so the protection covers old
     data too: every node gains the restricted tag in its secrecy.
     Raising labels across a tree is not expressible as app-level
     syscalls (a process tainted enough to enumerate the tree may no
     longer write to its less-tainted leaves), so the provider acts
     here as the label authority, directly against the filesystem —
     this function is TCB by construction. *)
  let fs = Kernel.fs t.kernel in
  let add_read_tag (labels : Flow.labels) =
    { labels with Flow.secrecy = Label.add tag labels.Flow.secrecy }
  in
  let rec walk path =
    match Fs.stat fs path with
    | Error _ as e -> e
    | Ok st -> (
        match Fs.set_labels fs path ~labels:(add_read_tag st.Fs.labels) with
        | Error _ as e -> e
        | Ok () ->
            if st.Fs.kind = Fs.Directory then
              match Fs.readdir fs path with
              | Error _ as e -> e
              | Ok (names, _) ->
                  List.fold_left
                    (fun acc name ->
                      match acc with
                      | Error _ as e -> e
                      | Ok () -> walk (path ^ "/" ^ name))
                    (Ok ()) names
            else Ok ())
  in
  (match walk (user_dir account.Account.user) with
  | Ok () -> ()
  | Error e ->
      invalid_arg ("read protection relabel failed: " ^ Os_error.to_string e));
  Kernel.record t.kernel ~pid:0
    (Audit.Label_changed
       {
         old_labels = Flow.bottom;
         new_labels = Flow.make ~secrecy:(Label.singleton tag) ();
         decision = Ok ();
       });
  tag

let authenticate t ~user ~password =
  match find_account t user with
  | None -> false
  | Some account -> Account.verify_password account password

let login t ~user ~password =
  if not (authenticate t ~user ~password) then Error "bad credentials"
  else
    Ok (W5_http.Session.start t.sessions ~user ~now:(Kernel.tick t.kernel))

let logout t ~sid = W5_http.Session.destroy t.sessions ~sid

let session_user t ~sid =
  Option.map
    (fun s -> s.W5_http.Session.user)
    (W5_http.Session.find t.sessions ~sid)

let expire_sessions t ~max_age =
  W5_http.Session.expire_older_than t.sessions
    ~tick:(Kernel.tick t.kernel - max_age);
  W5_http.Session.active t.sessions

let enable_app t ~user ~app =
  match find_account t user with
  | None -> Error ("no such user: " ^ user)
  | Some account ->
      if App_registry.find t.registry app = None then
        Error ("no such app: " ^ app)
      else begin
        if not (Policy.app_enabled account.Account.policy app) then begin
          Policy.enable_app account.Account.policy app;
          App_registry.record_install t.registry app
        end;
        Ok ()
      end

let app_caps_for t ~viewer ~app =
  (* Write capability: the requesting user's, if they delegated writes
     to this app — the app acts on the viewer's data. *)
  let caps =
    match viewer with
    | Some (account : Account.t)
      when Policy.write_delegated account.Account.policy app ->
        Capability.Set.add
          (Capability.make account.Account.write_tag Capability.Plus)
          Capability.Set.empty
    | Some _ | None -> Capability.Set.empty
  in
  (* Read capabilities: granted by each protected datum's *owner*, not
     the viewer — "only authorized software can read Bob's secrets in
     the first place" (§3.1). *)
  Hashtbl.fold
    (fun _ (account : Account.t) caps ->
      match account.Account.read_tag with
      | Some rt when Policy.read_granted account.Account.policy app ->
          Capability.Set.add (Capability.make rt Capability.Plus) caps
      | Some _ | None -> caps)
    t.accounts caps
