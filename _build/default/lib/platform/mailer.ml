open W5_difc
open W5_http

type email = {
  to_user : string;
  subject : string;
  body : string;
}

(* One outbox table per platform, keyed like the gateway's invitation
   registry: by the provider principal's unique id. *)
let outboxes : (int, (string, email list ref) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 8

let outbox_table platform =
  let key = Principal.id (Platform.provider platform) in
  match Hashtbl.find_opt outboxes key with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 16 in
      Hashtbl.replace outboxes key table;
      table

let user_box platform user =
  let table = outbox_table platform in
  match Hashtbl.find_opt table user with
  | Some box -> box
  | None ->
      let box = ref [] in
      Hashtbl.replace table user box;
      box

let outbox platform ~user = List.rev !(user_box platform user)
let outbox_size platform ~user = List.length !(user_box platform user)
let clear_outbox platform ~user = user_box platform user := []

let deliver_app_page platform ~user ~app ?(query = []) ~subject () =
  match Platform.find_account platform user with
  | None -> Error ("no such user: " ^ user)
  | Some account when not (Policy.app_enabled account.Account.policy app) ->
      Error (user ^ " has not enabled " ^ app)
  | Some account -> (
      let request =
        Request.make ~client:("mailer:" ^ user) Request.GET
          (Uri.with_query ("/app/" ^ app) query)
      in
      let response =
        Gateway.dispatch_app platform ~viewer:(Some account) ~app_id:app
          request
      in
      match Response.status_code response.Response.status with
      | 200 ->
          let email = { to_user = user; subject; body = response.Response.body } in
          let box = user_box platform user in
          box := email :: !box;
          Ok email
      | code ->
          Error (Printf.sprintf "HTTP %d: %s" code response.Response.body))

type digest_stats = {
  delivered : int;
  refused : int;
  skipped : int;
}

let run_digests platform ~app ?query ~subject () =
  List.fold_left
    (fun stats (account : Account.t) ->
      if not (Policy.app_enabled account.Account.policy app) then
        { stats with skipped = stats.skipped + 1 }
      else
        match
          deliver_app_page platform ~user:account.Account.user ~app ?query
            ~subject ()
        with
        | Ok _ -> { stats with delivered = stats.delivered + 1 }
        | Error _ -> { stats with refused = stats.refused + 1 })
    { delivered = 0; refused = 0; skipped = 0 }
    (Platform.accounts platform)
