(** Invitations (§1/§2): "a prospective user can sign up simply by
    checking a box or 'accepting an invitation'".

    An invitation is a provider-mediated offer: an existing user (or a
    developer) invites a user to an application. Accepting performs
    the whole adoption in one step — enable the app and, if the
    inviter asked for it, delegate write access — which is exactly the
    paper's point: adopting a new application costs one click, not a
    data migration.

    Invitations are platform state (not user data): they carry no
    secrets and need no labels. *)

type t = {
  invite_id : string;
  from_user : string;       (** inviter: a user name or developer name *)
  to_user : string;
  app : string;
  suggest_write : bool;     (** inviter suggests delegating write *)
  mutable accepted : bool;
}

type registry

val create_registry : unit -> registry

val send :
  registry -> Platform.t -> from_user:string -> to_user:string ->
  app:string -> ?suggest_write:bool -> unit -> (t, string) result
(** Fails if the app or the invitee does not exist. Duplicate pending
    invitations (same invitee + app) are rejected. *)

val pending : registry -> to_user:string -> t list

val accept :
  registry -> Platform.t -> invite_id:string -> to_user:string ->
  (unit, string) result
(** The one click: enables the app for the invitee (counting the
    install) and applies the suggested write delegation. Only the
    invitee may accept, and only once. *)

val decline : registry -> invite_id:string -> to_user:string -> (unit, string) result
val find : registry -> invite_id:string -> t option
