(** Outbound mail, simulated (§2: the recommendation engine "sends him
    daily e-mail with the 5 most 'relevant' photos and blog entries").

    E-mail leaves the platform, so it is an export like any other: the
    mailer runs the application for the recipient and pushes the page
    through the very same {!Gateway.dispatch_app} → {!Perimeter} path
    a browser request takes. A digest whose content some friend's
    declassifier refuses simply is not sent — there is no side door
    for mail.

    Delivered mail lands in a per-user outbox (the simulation stand-in
    for an SMTP spool); tests read the outbox as "what left the
    building". *)

type email = {
  to_user : string;
  subject : string;
  body : string;
}

val deliver_app_page :
  Platform.t -> user:string -> app:string ->
  ?query:(string * string) list -> subject:string -> unit ->
  (email, string) result
(** Run [app] as [user] with [query], export the page toward the user,
    and enqueue it as mail. The user must have enabled the app — mail
    is not a way to run code the user never chose. [Error] carries the
    reason (not enabled, refusal, missing app, app error); nothing is
    enqueued then. *)

val outbox : Platform.t -> user:string -> email list
(** Oldest first. *)

val outbox_size : Platform.t -> user:string -> int
val clear_outbox : Platform.t -> user:string -> unit

type digest_stats = {
  delivered : int;
  refused : int;
  skipped : int;  (** users who have not enabled the app *)
}

val run_digests :
  Platform.t -> app:string -> ?query:(string * string) list ->
  subject:string -> unit -> digest_stats
(** The "daily" batch: one delivery attempt per signed-up user who has
    enabled [app]. *)
