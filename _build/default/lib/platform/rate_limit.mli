(** Per-client request throttling (§3.5 "Performance and resource
    allocation").

    Process quotas stop a rogue {e application}; this token bucket
    stops a rogue {e client} hammering the front door. One bucket per
    key (client identity), refilled in whole tokens per kernel tick.
    Provider configuration, enforced by the gateway before any
    developer code runs. *)

type t

val create : ?capacity:int -> ?refill_per_tick:int -> unit -> t
(** Defaults: capacity 20, refill 1 token per kernel tick. *)

val allow : t -> key:string -> now:int -> bool
(** Take one token from [key]'s bucket at time [now]; [false] means
    throttled. Buckets start full. *)

val remaining : t -> key:string -> now:int -> int
val reset : t -> key:string -> unit
