(** Provider operations: the statistics a W5 operator watches.

    "The providers' entire purpose and business is to get these
    functions right" (§2) — so the provider needs to see, at a glance,
    which applications trip the enforcement machinery. Everything here
    is derived from the audit log and platform state; it reads no user
    data. *)

type app_stats = {
  app_id : string;
  installs : int;
  denials : int;      (** flow/export denials attributed to its processes *)
  quota_kills : int;
}

type report = {
  users : int;
  apps : int;
  requests_served : int;
  live_processes : int;
  total_processes_spawned : int;
  audit_entries : int;
  total_denials : int;
  export_denials : int;
  sessions_active : int;
  files : int;
  per_app : app_stats list;  (** sorted by descending denials *)
}

val collect : Platform.t -> report
(** Attribution: a denial belongs to the application whose process
    raised it (matched through the audit log's pid against the process
    table, while the process is still unreaped) — processes already
    reaped count only in the totals. *)

val render : report -> string
(** A plain-text operations summary. *)

val suspicious_apps : ?threshold:int -> report -> string list
(** Apps with at least [threshold] (default 3) denials — candidates
    for editorial review. *)
