lib/platform/declassifier.ml: Account Buffer Capability Kernel List Option Platform Policy Record String Syscall W5_difc W5_os W5_store
