lib/platform/mailer.ml: Account Gateway Hashtbl List Platform Policy Principal Printf Request Response Uri W5_difc W5_http
