lib/platform/group.mli: Account Capability Platform Tag W5_difc W5_os
