lib/platform/invite.mli: Platform
