lib/platform/group.ml: Account Capability Flow Fs Hashtbl Kernel Label List Os_error Platform Policy Principal Printf String Syscall Tag W5_difc W5_os W5_store
