lib/platform/perimeter.mli: Account Flow Format Platform Tag W5_difc
