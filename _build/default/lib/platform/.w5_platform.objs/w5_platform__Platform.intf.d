lib/platform/platform.mli: Account App_registry Capability Flow Kernel Os_error Principal Rate_limit Record Resource Tag W5_difc W5_http W5_os W5_store
