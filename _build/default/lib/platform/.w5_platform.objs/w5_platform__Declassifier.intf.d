lib/platform/declassifier.mli: Account Kernel Platform W5_os
