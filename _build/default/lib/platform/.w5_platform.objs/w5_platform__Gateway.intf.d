lib/platform/gateway.mli: Account Platform Request Response W5_http
