lib/platform/mailer.mli: Platform
