lib/platform/rate_limit.ml: Hashtbl
