lib/platform/app_registry.mli: Kernel Principal W5_difc W5_http W5_os
