lib/platform/policy.mli: Tag W5_difc
