lib/platform/admin.mli: Platform
