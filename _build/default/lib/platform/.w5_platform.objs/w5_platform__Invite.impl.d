lib/platform/invite.ml: Account App_registry Hashtbl List Platform Policy Printf String
