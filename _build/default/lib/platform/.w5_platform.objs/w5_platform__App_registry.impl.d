lib/platform/app_registry.ml: Hashtbl Kernel List Option Principal String W5_difc W5_http W5_os
