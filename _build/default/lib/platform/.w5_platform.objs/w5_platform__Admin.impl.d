lib/platform/admin.ml: App_registry Audit Buffer Fs Hashtbl Int Kernel List Option Platform Printf Proc String W5_http W5_os
