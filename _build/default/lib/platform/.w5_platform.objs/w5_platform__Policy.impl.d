lib/platform/policy.ml: List String Tag W5_difc
