lib/platform/account.mli: Capability Flow Format Label Policy Principal Tag W5_difc
