lib/platform/account.ml: Capability Flow Format Label Policy Principal String Tag W5_difc
