lib/platform/rate_limit.mli:
