lib/platform/perimeter.ml: Account Audit Declassifier Flow Format Kernel Label Option Os_error Platform Policy Proc Tag W5_difc W5_os
