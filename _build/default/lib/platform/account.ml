open W5_difc

type t = {
  user : string;
  password : string;
  principal : Principal.t;
  secret_tag : Tag.t;
  write_tag : Tag.t;
  mutable read_tag : Tag.t option;
  mutable caps : Capability.Set.t;
  policy : Policy.t;
}

let make ~user ~password =
  let principal = Principal.make Principal.End_user user in
  let secret_tag = Tag.fresh ~name:(user ^ ".secret") Tag.Secrecy in
  let write_tag = Tag.fresh ~name:(user ^ ".write") Tag.Integrity in
  let caps =
    Capability.Set.grant_dual secret_tag
      (Capability.Set.grant_dual write_tag Capability.Set.empty)
  in
  {
    user;
    password;
    principal;
    secret_tag;
    write_tag;
    read_tag = None;
    caps;
    policy = Policy.create ();
  }

let enable_read_protection t =
  match t.read_tag with
  | Some tag -> tag
  | None ->
      let tag =
        Tag.fresh ~name:(t.user ^ ".read") ~restricted:true Tag.Secrecy
      in
      t.read_tag <- Some tag;
      t.caps <- Capability.Set.grant_dual tag t.caps;
      tag

let owns_tag t tag =
  Tag.equal tag t.secret_tag || Tag.equal tag t.write_tag
  || match t.read_tag with Some rt -> Tag.equal tag rt | None -> false

let secrecy_labels t =
  let base = Label.singleton t.secret_tag in
  match t.read_tag with
  | None -> base
  | Some rt -> Label.add rt base

let data_labels t =
  Flow.make ~secrecy:(secrecy_labels t)
    ~integrity:(Label.singleton t.write_tag) ()

let verify_password t password = String.equal t.password password

let pp fmt t =
  Format.fprintf fmt "account:%s tags=(%a,%a%t)" t.user Tag.pp t.secret_tag
    Tag.pp t.write_tag (fun fmt ->
      match t.read_tag with
      | Some rt -> Format.fprintf fmt ",%a" Tag.pp rt
      | None -> ())
