(** Declassifiers: the only holes in the security perimeter (§3.1).

    A declassifier is a small, pluggable, auditable agent that holds a
    user's export privilege ([t-]) and decides, per export attempt,
    whether data tainted by that user's tags may cross the perimeter
    toward a given viewer. Two properties from the paper:

    - {b data-structure agnostic}: the decision logic sees the viewer
      and an opaque payload; the same friend-list declassifier serves
      the photo app and the blog app;
    - {b factored out and small}: logic is a single function, simple
      enough to audit; it runs in its own kernel process via a gate,
      so the privilege never leaks into application code.

    Mechanically: {!install} registers a kernel gate whose capability
    set carries [t-] for the user's secrecy tags (and [t+] for the
    read-protection tag, so it can absorb protected payloads). The
    perimeter invokes the gate; the gate runs the logic; on approval
    it {e actually declassifies} — drops the tags from its own label —
    and responds with the (possibly transformed) payload, which
    therefore carries a smaller label. *)

open W5_os

type logic =
  Kernel.ctx -> owner:string -> viewer:string option -> data:string ->
  string option
(** Return [Some payload] to export (possibly transformed), [None] to
    refuse. The logic may read the owner's files (e.g. the friend
    list) through ordinary tainting syscalls. *)

val gate_name : owner:string -> name:string -> string
(** ["declass/<owner>/<name>"]. *)

val encode_arg : viewer:string option -> data:string -> string
(** The wire format the perimeter uses to call a gate. *)

val install : Platform.t -> account:Account.t -> name:string -> logic -> string
(** Register the gate for this account and return its name. The gate's
    capability set is fixed at installation: if the user enables read
    protection {e afterwards}, existing gates cannot clear the new
    restricted tag and must be reinstalled — privilege never grows
    behind the user's back. *)

val install_and_authorize :
  Platform.t -> account:Account.t -> name:string -> logic -> string
(** {!install}, then point the account's export rules for {e all} of
    its secrecy tags at the new gate. *)

(** {1 Stock decision logics} *)

val everyone : logic
(** Export to anyone — the "public data" policy. *)

val nobody : logic
(** Refuse every export. Equivalent to having no rule, but lets a user
    install an explicit tombstone. *)

val owner_only : logic
(** Export only when the viewer is the data's owner. (The perimeter's
    boilerplate already allows owner exports without any declassifier;
    this exists for users who route everything through one gate.) *)

val friends_only : logic
(** Read [/users/<owner>/friends], export iff the viewer appears in
    its [friends] list. The paper's canonical example. *)

val group : members:string list -> logic
(** Export iff the viewer is in a fixed member list — an idiosyncratic
    user-supplied policy. *)

val watermarked : stamp:string -> logic -> logic
(** Wrap another logic, appending a visible stamp to whatever it
    exports — demonstrates payload transformation in a declassifier. *)

(** {1 Marked-span transformations}

    Declassifiers are data-structure agnostic (§3.1) — they cannot
    parse application formats. The platform therefore defines one
    byte-level convention both sides speak: applications may wrap
    sensitive spans in {!secret_span} markers, and any declassifier
    can redact or veto marked content without understanding what it
    is. The same redacting declassifier then serves a calendar (hide
    event titles), a poll (block raw ballots) or anything else. *)

val secret_open : string
val secret_close : string

val secret_span : string -> string
(** Wrap content in the sensitive-span markers. *)

val contains_secret_span : string -> bool

val redact_spans : ?replacement:string -> string -> string
(** Replace every marked span (markers included) by [replacement]
    (default ["\u{2588}\u{2588}\u{2588}"]). Unterminated spans are
    redacted to the end. *)

val redacting : ?replacement:string -> logic -> logic
(** Export whatever [logic] allows, with marked spans redacted. The
    owner still sees originals: the perimeter skips declassifiers
    entirely for data going to its owner. *)

val require_no_secrets : logic -> logic
(** Refuse the export if the payload still carries any marked span —
    "aggregate results may leave; raw entries may not". *)
