type bucket = {
  mutable tokens : int;
  mutable last_refill : int;
}

type t = {
  capacity : int;
  refill_per_tick : int;
  buckets : (string, bucket) Hashtbl.t;
}

let create ?(capacity = 20) ?(refill_per_tick = 1) () =
  { capacity; refill_per_tick; buckets = Hashtbl.create 32 }

let bucket_of t ~key ~now =
  match Hashtbl.find_opt t.buckets key with
  | Some bucket -> bucket
  | None ->
      let bucket = { tokens = t.capacity; last_refill = now } in
      Hashtbl.replace t.buckets key bucket;
      bucket

let refill t bucket ~now =
  if now > bucket.last_refill then begin
    let earned = (now - bucket.last_refill) * t.refill_per_tick in
    bucket.tokens <- min t.capacity (bucket.tokens + earned);
    bucket.last_refill <- now
  end

let allow t ~key ~now =
  let bucket = bucket_of t ~key ~now in
  refill t bucket ~now;
  if bucket.tokens > 0 then begin
    bucket.tokens <- bucket.tokens - 1;
    true
  end
  else false

let remaining t ~key ~now =
  let bucket = bucket_of t ~key ~now in
  refill t bucket ~now;
  bucket.tokens

let reset t ~key = Hashtbl.remove t.buckets key
