(** The W5 meta-application: one logical machine hosting many
    applications over commingled user data (§2, Figure 2).

    A [Platform.t] bundles the kernel, the account table, the
    application registry and the session table — everything the
    provider operates. The provider-written code in this module is
    part of the trusted computing base; developer code never touches
    [Platform.t] directly, only its own {!W5_os.Kernel.ctx}.

    {b Data layout.} Every user [u] owns [/users/u/] (directory
    secrecy: [u]'s secrecy tags). Files beneath it carry
    [S = {u.secret (, u.read)}, I = {u.write}] — tainted for privacy,
    write-protected for integrity. Applications may keep scratch state
    under [/apps/<dev>/<app>/]. *)

open W5_difc
open W5_os
open W5_store

type t

val create : ?enforcing:bool -> unit -> t
(** Boot a platform: fresh kernel, [/users], [/apps] and the object
    store root. *)

val kernel : t -> Kernel.t
val registry : t -> App_registry.t
val sessions : t -> W5_http.Session.t
val provider : t -> Principal.t
val requests_served : t -> int
val count_request : t -> unit

val vetted_apps : t -> string list
(** The provider's vetted-software list (fed by editors, §3.2); the
    gateway consults it for users with integrity protection on. *)

val is_vetted : t -> string -> bool
val add_vetted : t -> string -> unit
val set_vetted : t -> string list -> unit

val set_rate_limit : t -> Rate_limit.t option -> unit
(** Provider-configured client throttling; [None] (the default)
    disables it. Applied by the gateway to [/app/…] routes. *)

val rate_limit : t -> Rate_limit.t option

val enable_dns : t -> zone:string -> W5_http.Dns.t
(** Create the provider's DNS zone (Â§2: "all of W5 should have DNS and
    HTTP front-ends"), register a vanity host for every currently
    published application, and attach it to the gateway. Returns the
    zone so the provider can add further records; apps published later
    need {!W5_http.Dns.register_app} explicitly. *)

val dns : t -> W5_http.Dns.t option

val set_app_limits : t -> app:string -> Resource.limits -> unit
(** Provider-tuned sandbox for one application (Â§3.5): e.g. tighter
    quotas for an app the editors flagged, or a larger disk budget for
    the photo service. *)

val app_limits : t -> app:string -> Resource.limits
(** The limits the gateway applies when spawning this app's processes
    ({!W5_os.Resource.default_app_limits} unless overridden). *)

val with_ctx :
  t -> name:string -> ?owner:Principal.t -> ?labels:Flow.labels ->
  ?caps:Capability.Set.t -> ?limits:Resource.limits ->
  (Kernel.ctx -> ('a, Os_error.t) result) -> ('a, Os_error.t) result
(** Run [f] inside a fresh synchronous process (defaults: provider-
    owned, bottom labels, no caps, unlimited). The workhorse for
    provider-side operations and tests. A quota kill or uncaught
    exception surfaces as [Error]. *)

(** {1 Accounts} *)

val signup : t -> user:string -> password:string -> (Account.t, string) result
(** Create the account, mint its tags, build its home directory and
    empty [profile] / [friends] records. User names are restricted to
    [A-Za-z0-9_-]+ (they appear in paths, cookies and hostnames). *)

val find_account : t -> string -> Account.t option
val account_exn : t -> string -> Account.t
val accounts : t -> Account.t list
val owner_of_tag : t -> Tag.t -> Account.t option
(** Which account minted this tag — how the perimeter finds the policy
    that governs an unfamiliar taint. *)

val register_tag_owner : t -> Tag.t -> user:string -> unit
(** Record that [user]'s account answers for [tag]'s export policy.
    Provider-side (TCB): used when minting non-personal tags such as
    group tags. *)

val enable_read_protection : t -> Account.t -> Tag.t
(** Mint the account's restricted read tag, register its ownership and
    relabel the user's existing files to carry it. Declassifier gates
    installed {e before} this call do not receive the new tag's
    capabilities — reinstall them
    ({!Declassifier.install_and_authorize}) to re-authorize exports. *)

val authenticate : t -> user:string -> password:string -> bool
val login :
  t -> user:string -> password:string -> (W5_http.Session.session, string) result
val logout : t -> sid:string -> unit
val session_user : t -> sid:string -> string option

val expire_sessions : t -> max_age:int -> int
(** Drop sessions older than [max_age] kernel ticks; returns how many
    survived. Providers run this periodically. *)

(** {1 User data access (provider-side)} *)

val users_root : string
val user_dir : string -> string
val user_file : string -> string -> string
(** [user_file "bob" "profile"] is ["/users/bob/profile"]. *)

val write_user_record :
  t -> Account.t -> file:string -> Record.t -> (unit, Os_error.t) result
(** Create or overwrite a record file under the user's home with the
    user's own authority (labels and caps). Used by the provider
    front-end on the user's behalf and by tests to seed data. *)

val read_user_record :
  t -> Account.t -> file:string -> (Record.t, Os_error.t) result

val user_mkdir : t -> Account.t -> dir:string -> (unit, Os_error.t) result

val delete_user_file :
  t -> Account.t -> file:string -> (unit, Os_error.t) result
(** Unlink a file under the user's home with the user's own authority
    (write protection applies as usual). *)

(** {1 Application management} *)

val enable_app : t -> user:string -> app:string -> (unit, string) result
(** Policy bookkeeping plus the registry's install counter. *)

val app_caps_for :
  t -> viewer:Account.t option -> app:string -> Capability.Set.t
(** The least-privilege capability set an app process receives when
    serving [viewer]: the viewer's write capability if they delegated
    writes to this app, plus the read capability ([t+]) of every
    account whose owner granted this app read access to their
    protected data — never any [t-] (export stays with
    declassifiers). *)
