type server = Request.t -> Response.t

type t = {
  client_name : string;
  server : server;
  mutable jar : (string * string) list;
  mutable history : string list;
}

let make ?(name = "anonymous") server =
  { client_name = name; server; jar = []; history = [] }

let name t = t.client_name
let cookies t = t.jar

let cookie_header t =
  if t.jar = [] then Headers.empty
  else
    Headers.set Headers.empty "Cookie"
      (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) t.jar))

let absorb_cookies t response =
  List.iter
    (fun (name, value) ->
      t.jar <- (name, value) :: List.remove_assoc name t.jar)
    (Headers.cookies_set_by response.Response.headers)

let rec perform t request redirects_left =
  let response = t.server request in
  absorb_cookies t response;
  t.history <- response.Response.body :: t.history;
  match Headers.get response.Response.headers "location" with
  | Some location
    when response.Response.status = Response.Redirect_302 && redirects_left > 0
    ->
      perform t
        (Request.make ~headers:(cookie_header t) ~client:t.client_name
           Request.GET location)
        (redirects_left - 1)
  | Some _ | None -> response

let get ?(params = []) t path =
  (* merge [params] with any query already inline in [path] *)
  let u = Uri.parse path in
  let target = Uri.with_query u.Uri.path (u.Uri.query @ params) in
  perform t
    (Request.make ~headers:(cookie_header t) ~client:t.client_name Request.GET
       target)
    5

let post ?(form = []) t path =
  perform t
    (Request.make ~headers:(cookie_header t) ~client:t.client_name ~body:form
       Request.POST path)
    5

let last_bodies t = t.history

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec scan i =
      i + nn <= hn && (String.sub haystack i nn = needle || scan (i + 1))
    in
    scan 0

let saw t needle = List.exists (fun body -> contains body needle) t.history
