type meth =
  | GET
  | POST

type t = {
  meth : meth;
  uri : Uri.t;
  headers : Headers.t;
  body : (string * string) list;
  client : string;
}

let make ?(headers = Headers.empty) ?(body = []) ?(client = "anonymous") meth
    target =
  { meth; uri = Uri.parse target; headers; body; client }

let param t key =
  match Uri.query_get t.uri key with
  | Some _ as v -> v
  | None -> List.assoc_opt key t.body

let param_or t key ~default = Option.value (param t key) ~default
let cookie t name = List.assoc_opt name (Headers.parse_cookies t.headers)

let pp_meth fmt = function
  | GET -> Format.pp_print_string fmt "GET"
  | POST -> Format.pp_print_string fmt "POST"

let pp fmt t =
  Format.fprintf fmt "%a %a (client=%s)" pp_meth t.meth Uri.pp t.uri t.client
