(** A miniature DNS for the W5 front door.

    §2: "all of W5 should have DNS and HTTP front-ends so that users
    can interact with a W5 application with today's Web clients", and
    users navigate to per-developer URLs. This module models the name
    side: a provider-controlled zone mapping hostnames to targets. The
    gateway uses it to give every application a vanity host —
    [crop.devA.<zone>] — in addition to its path route
    [/app/devA/crop].

    Resolution supports exact records, wildcard records ([*.<suffix>])
    and CNAME chains (bounded, loop-safe). *)

type target =
  | App of string      (** an application id, e.g. ["devA/crop"] *)
  | Front_end          (** the provider's own pages *)
  | Cname of string    (** alias to another hostname *)

type t

val create : zone:string -> t
(** [zone] is the apex, e.g. ["w5.example"]. The apex itself and
    ["www.<zone>"] resolve to [Front_end]. *)

val zone : t -> string

val add_record : t -> host:string -> target -> unit
(** [host] may be a fully qualified name or a prefix (completed with
    the zone); ["*.<suffix>"] declares a wildcard. Replaces any
    previous record. *)

val remove_record : t -> host:string -> unit

val app_host : t -> app_id:string -> string
(** The canonical vanity host for an app: ["<name>.<dev>.<zone>"]. *)

val register_app : t -> app_id:string -> string
(** Add the canonical record for the app; returns the host. *)

val resolve : t -> host:string -> target option
(** Exact record first, then the longest matching wildcard, following
    at most 8 CNAME links. [None] for hosts outside the zone or
    unresolvable names. *)

val records : t -> (string * target) list
(** Sorted by host. *)
