type session = {
  sid : string;
  user : string;
  created_at : int;
}

type t = {
  sessions : (string, session) Hashtbl.t;
  mutable counter : int;
}

let cookie_name = "w5sid"
let create () = { sessions = Hashtbl.create 64; counter = 0 }

let start t ~user ~now =
  t.counter <- t.counter + 1;
  (* A simulation-grade id: unique and unguessable enough for tests;
     real deployments would use a CSPRNG (DESIGN.md §7). *)
  let sid = Printf.sprintf "sid-%d-%d-%s" t.counter (Hashtbl.hash (user, t.counter, now)) user in
  let session = { sid; user; created_at = now } in
  Hashtbl.replace t.sessions sid session;
  session

let find t ~sid = Hashtbl.find_opt t.sessions sid
let destroy t ~sid = Hashtbl.remove t.sessions sid
let active t = Hashtbl.length t.sessions

let expire_older_than t ~tick =
  let old =
    Hashtbl.fold
      (fun sid s acc -> if s.created_at < tick then sid :: acc else acc)
      t.sessions []
  in
  List.iter (Hashtbl.remove t.sessions) old
