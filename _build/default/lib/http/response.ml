type status =
  | Ok_200
  | Redirect_302
  | Bad_request_400
  | Unauthorized_401
  | Forbidden_403
  | Not_found_404
  | Too_many_requests_429
  | Server_error_500

type t = {
  status : status;
  headers : Headers.t;
  body : string;
}

let status_code = function
  | Ok_200 -> 200
  | Redirect_302 -> 302
  | Bad_request_400 -> 400
  | Unauthorized_401 -> 401
  | Forbidden_403 -> 403
  | Not_found_404 -> 404
  | Too_many_requests_429 -> 429
  | Server_error_500 -> 500

let status_reason = function
  | Ok_200 -> "OK"
  | Redirect_302 -> "Found"
  | Bad_request_400 -> "Bad Request"
  | Unauthorized_401 -> "Unauthorized"
  | Forbidden_403 -> "Forbidden"
  | Not_found_404 -> "Not Found"
  | Too_many_requests_429 -> "Too Many Requests"
  | Server_error_500 -> "Internal Server Error"

let make ?(headers = Headers.empty) status body = { status; headers; body }
let ok ?headers body = make ?headers Ok_200 body

let html ?(headers = Headers.empty) body =
  make ~headers:(Headers.set headers "Content-Type" "text/html") Ok_200 body

let redirect location =
  make ~headers:(Headers.set Headers.empty "Location" location) Redirect_302 ""

let forbidden reason = make Forbidden_403 ("forbidden: " ^ reason)
let unauthorized reason = make Unauthorized_401 ("unauthorized: " ^ reason)
let not_found what = make Not_found_404 ("not found: " ^ what)
let bad_request reason = make Bad_request_400 ("bad request: " ^ reason)
let server_error reason = make Server_error_500 ("error: " ^ reason)
let too_many_requests reason = make Too_many_requests_429 reason

let with_cookie t ~name ~value =
  { t with headers = Headers.set_cookie t.headers ~name ~value }

let is_success t = t.status = Ok_200 || t.status = Redirect_302

let pp fmt t =
  Format.fprintf fmt "%d %s (%d bytes)" (status_code t.status)
    (status_reason t.status) (String.length t.body)
