type t = (string * string) list

let empty = []
let of_list l = l
let to_list t = t
let add t name value = t @ [ (name, value) ]
let canon = String.lowercase_ascii

let set t name value =
  List.filter (fun (n, _) -> canon n <> canon name) t @ [ (name, value) ]

let get t name =
  List.find_map
    (fun (n, v) -> if canon n = canon name then Some v else None)
    t

let get_all t name =
  List.filter_map
    (fun (n, v) -> if canon n = canon name then Some v else None)
    t

let mem t name = get t name <> None

let split_cookie_pair pair =
  let pair = String.trim pair in
  match String.index_opt pair '=' with
  | None -> None
  | Some i ->
      Some
        ( String.trim (String.sub pair 0 i),
          String.trim (String.sub pair (i + 1) (String.length pair - i - 1)) )

let parse_cookies t =
  get_all t "cookie"
  |> List.concat_map (String.split_on_char ';')
  |> List.filter_map split_cookie_pair

let set_cookie t ~name ~value = add t "Set-Cookie" (name ^ "=" ^ value)

let cookies_set_by t =
  get_all t "set-cookie" |> List.filter_map split_cookie_pair
