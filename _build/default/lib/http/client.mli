(** A simulated browser outside the security perimeter.

    A client holds a cookie jar, addresses a server (any
    [Request.t -> Response.t] function — in practice the platform's
    perimeter handler), and follows redirects. Everything a client
    ever receives has, by construction, crossed the perimeter: tests
    assert on client-visible bytes to prove exfiltration is or is not
    possible. *)

type server = Request.t -> Response.t

type t

val make : ?name:string -> server -> t
val name : t -> string
val cookies : t -> (string * string) list

val get :
  ?params:(string * string) list -> t -> string -> Response.t
(** [get client "/path"]; [params] are appended to the query string.
    Follows up to 5 redirects, carrying cookies. *)

val post :
  ?form:(string * string) list -> t -> string -> Response.t

val last_bodies : t -> string list
(** Every response body this client has ever received, newest first —
    the test suite's "what reached the outside world" oracle. *)

val saw : t -> string -> bool
(** Has any received body contained this substring? *)
