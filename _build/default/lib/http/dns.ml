type target =
  | App of string
  | Front_end
  | Cname of string

type t = {
  zone_apex : string;
  table : (string, target) Hashtbl.t;
}

let canon host = String.lowercase_ascii (String.trim host)

let create ~zone =
  let t = { zone_apex = canon zone; table = Hashtbl.create 32 } in
  Hashtbl.replace t.table t.zone_apex Front_end;
  Hashtbl.replace t.table ("www." ^ t.zone_apex) Front_end;
  t

let zone t = t.zone_apex

let qualify t host =
  let host = canon host in
  let apex = t.zone_apex in
  let hl = String.length host and al = String.length apex in
  if host = apex then host
  else if hl > al && String.sub host (hl - al - 1) (al + 1) = "." ^ apex then
    host
  else host ^ "." ^ apex

let add_record t ~host target = Hashtbl.replace t.table (qualify t host) target
let remove_record t ~host = Hashtbl.remove t.table (qualify t host)

let app_host t ~app_id =
  canon
    (match String.index_opt app_id '/' with
    | None -> app_id ^ "." ^ t.zone_apex
    | Some i ->
        let dev = String.sub app_id 0 i in
        let name = String.sub app_id (i + 1) (String.length app_id - i - 1) in
        name ^ "." ^ dev ^ "." ^ t.zone_apex)

let register_app t ~app_id =
  let host = app_host t ~app_id in
  Hashtbl.replace t.table host (App app_id);
  host

let in_zone t host =
  let host = canon host in
  let apex = t.zone_apex in
  let hl = String.length host and al = String.length apex in
  host = apex || (hl > al && String.sub host (hl - al - 1) (al + 1) = "." ^ apex)

let wildcard_lookup t host =
  (* the longest "*.suffix" record whose suffix matches *)
  let rec strip host =
    match String.index_opt host '.' with
    | None -> None
    | Some i -> (
        let suffix = String.sub host (i + 1) (String.length host - i - 1) in
        match Hashtbl.find_opt t.table ("*." ^ suffix) with
        | Some target -> Some target
        | None -> strip suffix)
  in
  strip host

let resolve t ~host =
  let rec follow host hops =
    if hops > 8 then None
    else if not (in_zone t host) then None
    else
      let host = canon host in
      let found =
        match Hashtbl.find_opt t.table host with
        | Some _ as hit -> hit
        | None -> wildcard_lookup t host
      in
      match found with
      | Some (Cname alias) -> follow (qualify t alias) (hops + 1)
      | (Some (App _) | Some Front_end | None) as answer -> answer
  in
  follow host 0

let records t =
  Hashtbl.fold (fun host target acc -> (host, target) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
