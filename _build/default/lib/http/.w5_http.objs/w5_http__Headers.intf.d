lib/http/headers.mli:
