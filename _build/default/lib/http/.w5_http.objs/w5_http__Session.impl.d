lib/http/session.ml: Hashtbl List Printf
