lib/http/html.ml: Buffer List Printf String
