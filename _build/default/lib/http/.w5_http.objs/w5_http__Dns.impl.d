lib/http/dns.ml: Hashtbl List String
