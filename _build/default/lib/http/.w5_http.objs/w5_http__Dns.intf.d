lib/http/dns.mli:
