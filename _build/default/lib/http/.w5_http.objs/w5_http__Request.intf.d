lib/http/request.mli: Format Headers Uri
