lib/http/response.mli: Format Headers
