lib/http/client.ml: Headers List Request Response String Uri
