lib/http/response.ml: Format Headers String
