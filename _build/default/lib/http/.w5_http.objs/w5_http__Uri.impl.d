lib/http/uri.ml: Buffer Char Format List Printf String
