lib/http/session.mli:
