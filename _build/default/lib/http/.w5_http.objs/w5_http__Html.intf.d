lib/http/html.mli:
