lib/http/headers.ml: List String
