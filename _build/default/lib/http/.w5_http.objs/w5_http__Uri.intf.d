lib/http/uri.mli: Format
