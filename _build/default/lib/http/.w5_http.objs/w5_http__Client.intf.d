lib/http/client.mli: Request Response
