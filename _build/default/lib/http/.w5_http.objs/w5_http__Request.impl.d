lib/http/request.ml: Format Headers List Option Uri
