(** Server-side session table.

    Maps opaque session-id cookies to an authenticated user name. The
    provider's login front-end creates sessions; the gateway consults
    them on every request. Ids are drawn from a deterministic
    generator (this is a simulation — see DESIGN.md §7 on crypto). *)

type t

val cookie_name : string
(** ["w5sid"]. *)

type session = {
  sid : string;
  user : string;
  created_at : int;   (** kernel tick *)
}

val create : unit -> t
val start : t -> user:string -> now:int -> session
val find : t -> sid:string -> session option
val destroy : t -> sid:string -> unit
val active : t -> int
val expire_older_than : t -> tick:int -> unit
(** Drop sessions created strictly before [tick]. *)
