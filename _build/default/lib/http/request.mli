(** HTTP requests as seen by the W5 front-end. *)

type meth =
  | GET
  | POST

type t = {
  meth : meth;
  uri : Uri.t;
  headers : Headers.t;
  body : (string * string) list;  (** decoded form fields for POST *)
  client : string;  (** opaque client identity: who is on the other end *)
}

val make :
  ?headers:Headers.t -> ?body:(string * string) list -> ?client:string ->
  meth -> string -> t
(** [make meth target] parses [target] as a {!Uri.t}. [client]
    defaults to ["anonymous"]. *)

val param : t -> string -> string option
(** Query parameter or form field, query first. *)

val param_or : t -> string -> default:string -> string
val cookie : t -> string -> string option
val pp_meth : Format.formatter -> meth -> unit
val pp : Format.formatter -> t -> unit
