(** Case-insensitive HTTP header collections and cookie strings. *)

type t

val empty : t
val of_list : (string * string) list -> t
val to_list : t -> (string * string) list
val add : t -> string -> string -> t
(** Appends; HTTP allows repeated headers. *)

val set : t -> string -> string -> t
(** Replaces all previous values of the name. *)

val get : t -> string -> string option
(** First value, name compared case-insensitively. *)

val get_all : t -> string -> string list
val mem : t -> string -> bool

val parse_cookies : t -> (string * string) list
(** All cookies from every [Cookie:] header. *)

val set_cookie : t -> name:string -> value:string -> t
(** Adds a [Set-Cookie:] header. *)

val cookies_set_by : t -> (string * string) list
(** Cookies announced by [Set-Cookie:] headers in a response. *)
