(** HTTP responses produced by the W5 perimeter. *)

type status =
  | Ok_200
  | Redirect_302
  | Bad_request_400
  | Unauthorized_401
  | Forbidden_403
  | Not_found_404
  | Too_many_requests_429
  | Server_error_500

type t = {
  status : status;
  headers : Headers.t;
  body : string;
}

val status_code : status -> int
val status_reason : status -> string

val make : ?headers:Headers.t -> status -> string -> t
val ok : ?headers:Headers.t -> string -> t
val html : ?headers:Headers.t -> string -> t
val redirect : string -> t
val forbidden : string -> t
(** The perimeter's answer when information flow blocks an export.
    The body carries only the data-free denial explanation. *)

val unauthorized : string -> t
val not_found : string -> t
val bad_request : string -> t
val server_error : string -> t
val too_many_requests : string -> t
val with_cookie : t -> name:string -> value:string -> t
val is_success : t -> bool
val pp : Format.formatter -> t -> unit
