(** HTML utilities and the client-side-script perimeter filter.

    §3.5 ("Client-side support"): W5 lets developers upload arbitrary
    HTML, which exacerbates cross-site scripting. The blunt instrument
    the paper proposes is to "disable JavaScript entirely by filtering
    it out at the security perimeter"; per-user relaxation in the
    MashupOS style is layered on top by the platform's policy
    (see {!W5_platform.Policy}). This module is the filter itself. *)

val escape : string -> string
(** Escape ampersand, angle brackets and both quote characters for
    safe inclusion in HTML text or attributes. *)

val page : title:string -> string -> string
(** A minimal, well-formed HTML page around a body fragment. *)

val element : string -> ?attrs:(string * string) list -> string -> string
(** [element "div" ~attrs:["class","x"] body] — attribute values are
    escaped; the body is trusted markup and included verbatim. *)

val text : string -> string
(** Escaped text node. *)

val link : href:string -> string -> string
val ul : string list -> string

val contains_script : string -> bool
(** Detects [<script] tags, [on*=] event-handler attributes and
    [javascript:] URLs, case-insensitively. *)

val strip_scripts : string -> string
(** Remove everything {!contains_script} detects: [<script>…</script>]
    elements (and any unterminated [<script] tail), inline event
    handler attributes, and [javascript:] URL schemes. The result
    always satisfies [not (contains_script (strip_scripts html))]. *)
