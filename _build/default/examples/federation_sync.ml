(* Multiple W5 providers (§3.3): zoe links her accounts on two
   competing providers; an import/export declassifier pair mirrors her
   data, and concurrent edits merge deterministically.

     dune exec examples/federation_sync.exe
*)

open W5_store
open W5_platform
open W5_federation

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let show_stats (s : Sync.stats) =
  step "sync round: a->b %d, b->a %d, merged %d, unchanged %d" s.Sync.a_to_b
    s.Sync.b_to_a s.Sync.merged s.Sync.unchanged

let () =
  print_endline "=== two providers, one user ===";
  let a = { Sync.platform = Platform.create (); provider_name = "w5-east" } in
  let b = { Sync.platform = Platform.create (); provider_name = "w5-west" } in
  let ok_s = function Ok v -> v | Error e -> failwith e in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  step "zoe has accounts on %s and %s" a.Sync.provider_name b.Sync.provider_name;

  let link = ok_s (Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile"; "friends" ] ()) in
  step "she grants the transfer agents her export and write privileges";

  (* she lives on east: writes land there *)
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  let write side account file record =
    match Platform.write_user_record side.Sync.platform account ~file record with
    | Ok () -> ()
    | Error e -> failwith (W5_os.Os_error.to_string e)
  in
  write a account_a "profile"
    (Record.of_fields [ ("user", "zoe"); ("display", "zoe-east"); ("bio", "sailor") ]);
  write a account_a "friends" (Record.of_fields [ ("friends", "ari,ben") ]);
  step "zoe updates her profile and friends on %s" a.Sync.provider_name;

  show_stats (ok_s (Sync.sync link));
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  let read side account file =
    match Sync.export_record side.Sync.platform account ~file with
    | Ok (record, _) -> record
    | Error e -> failwith (W5_os.Os_error.to_string e)
  in
  step "west now shows bio=%S friends=%S"
    (Record.get_or (read b account_b "profile") "bio" ~default:"?")
    (Record.get_or (read b account_b "friends") "friends" ~default:"?");

  print_endline "\n=== a netsplit: concurrent edits on both coasts ===";
  write a account_a "friends" (Record.of_fields [ ("friends", "ari,ben,cam") ]);
  write b account_b "friends" (Record.of_fields [ ("friends", "ari,ben,dee") ]);
  step "east adds cam; west adds dee";
  show_stats (ok_s (Sync.sync link));
  step "both replicas converge to friends=%S (set union, no data lost)"
    (Record.get_or (read a account_a "friends") "friends" ~default:"?");
  assert (Sync.converged link);
  step "converged: %b; a second sync is a no-op:" (Sync.converged link);
  show_stats (ok_s (Sync.sync link));
  print_endline "\nfederation_sync: done"
