(* A day in the life of a W5 provider (§2 "Providers", §3.5):

   - boot, absorb a request trace (including attacks),
   - read the operations report (data-free),
   - throttle an abusive client,
   - checkpoint the disk, lose everything, restore.

     dune exec examples/provider_ops.exe
*)

open W5_http
open W5_platform
open W5_workload

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let () =
  print_endline "=== boot + traffic ===";
  let society =
    Populate.build ~seed:31 ~users:10 ~friends_per_user:3 ~photos_per_user:2
      ~blog_posts_per_user:1 ()
  in
  let platform = society.Populate.platform in
  let mal = W5_difc.Principal.make W5_difc.Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  List.iter
    (fun user ->
      match Platform.enable_app platform ~user ~app:"mal/thief" with
      | Ok () -> ()
      | Error e -> failwith e)
    society.Populate.users;
  let rng = Rng.create ~seed:32 in
  let actions = Trace.generate rng ~society ~mix:Trace.read_heavy ~length:300 in
  let outcome = Trace.replay society actions in
  step "replayed %d actions: %d ok, %d refused" outcome.Trace.total
    outcome.Trace.ok outcome.Trace.forbidden;
  (* some thievery on top *)
  let mallory = Client.make ~name:"mallory" (Gateway.handler platform) in
  List.iter
    (fun target ->
      ignore (Client.get mallory "/app/mal/thief" ~params:[ ("target", target) ]))
    (List.filteri (fun i _ -> i < 4) society.Populate.users);
  step "an anonymous client probed mal/thief against 4 users";

  print_endline "\n=== the operations report ===";
  let report = Admin.collect platform in
  print_string (Admin.render report);
  (match Admin.suspicious_apps report with
  | [] -> step "no suspicious apps (threshold 3 denials)"
  | apps -> step "suspicious: %s -> hand to the editors" (String.concat ", " apps));

  print_endline "\n=== throttling the abusive client ===";
  Platform.set_rate_limit platform
    (Some (Rate_limit.create ~capacity:3 ~refill_per_tick:0 ()));
  let flood =
    List.init 6 (fun _ ->
        Response.status_code
          (Client.get mallory "/app/mal/thief"
             ~params:[ ("target", List.hd society.Populate.users) ])
            .Response.status)
  in
  step "next 6 probes: %s"
    (String.concat " " (List.map string_of_int flood));
  Platform.set_rate_limit platform None;

  print_endline "\n=== durability: checkpoint, disaster, restore ===";
  let fs = W5_os.Kernel.fs (Platform.kernel platform) in
  let image = W5_os.Fs.snapshot fs in
  step "checkpoint taken: %d bytes for %d filesystem nodes"
    (String.length image) (W5_os.Fs.total_files fs);
  (* disaster: an operator fat-fingers the user tree *)
  let victim = List.hd society.Populate.users in
  (match W5_os.Fs.write fs ("/users/" ^ victim ^ "/profile") ~data:"CORRUPTED" with
  | Ok () -> step "disaster: %s's profile corrupted on disk" victim
  | Error _ -> ());
  (match W5_os.Fs.restore_into fs image with
  | Ok () -> step "restore: disk image reloaded"
  | Error e -> failwith (W5_os.Os_error.to_string e));
  let client = Populate.login society victim in
  let r = Client.get client "/app/core/social" ~params:[ ("user", victim) ] in
  step "%s's profile after restore: HTTP %d, intact %b" victim
    (Response.status_code r.Response.status)
    (not (Client.saw client "CORRUPTED"));
  print_endline "\nprovider_ops: done"
