(* The minimal embedding: what a downstream project writes to host a
   W5 platform with one custom application. This file doubles as the
   README's "getting started" snippet — compiled, so it cannot rot.

     dune exec examples/embedding.exe
*)

open W5_platform

(* 1. An application is a function from a kernel context + request
   environment to a response. It touches the world only through
   syscalls: reads taint it, writes need delegation, and it could not
   leak data if it tried. *)
let greeter ctx (env : App_registry.env) =
  let open W5_os in
  (* whoever asks, the app reads ada's profile — a tainting read; the
     perimeter decides who may actually receive the result *)
  let who =
    match Syscall.read_file_taint ctx "/users/ada/profile" with
    | Ok _ -> (
        match env.App_registry.viewer with
        | Some user -> user ^ " (ada's data read)"
        | None -> "stranger (ada's data read)")
    | Error _ -> "nobody"
  in
  ignore (Syscall.respond ctx (W5_http.Html.page ~title:"hi" ("hello, " ^ who)))

let () =
  (* 2. Boot a provider and publish the app. *)
  let platform = Platform.create () in
  let dev = W5_difc.Principal.make W5_difc.Principal.Developer "you" in
  (match
     App_registry.publish (Platform.registry platform) ~dev ~name:"greeter"
       ~version:"1.0"
       ~source:(App_registry.Open_source "the twelve lines above")
       greeter
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* 3. Users sign up and adopt the app with one click. *)
  (match Platform.signup platform ~user:"ada" ~password:"s3cret" with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Platform.enable_app platform ~user:"ada" ~app:"you/greeter" with
  | Ok () -> ()
  | Error e -> failwith e);

  (* 4. Browsers talk to the gateway; the perimeter decides what they
     may see. *)
  let browser = W5_http.Client.make ~name:"ada" (Gateway.handler platform) in
  ignore
    (W5_http.Client.post browser "/login"
       ~form:[ ("user", "ada"); ("pass", "s3cret") ]);
  let response = W5_http.Client.get browser "/app/you/greeter" in
  Printf.printf "ada gets HTTP %d: profile data flowed to its owner\n"
    (W5_http.Response.status_code response.W5_http.Response.status);

  let anonymous = W5_http.Client.make (Gateway.handler platform) in
  let response = W5_http.Client.get anonymous "/app/you/greeter" in
  Printf.printf
    "a stranger gets HTTP %d: the same page, tainted by ada, cannot leave\n"
    (W5_http.Response.status_code response.W5_http.Response.status);
  print_endline "embedding: done"
