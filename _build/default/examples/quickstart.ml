(* Quickstart: Figure 1 vs Figure 2 in one terminal session.

   Runs the same story twice — first on a model of today's siloed Web,
   then on W5 — and prints what each architecture lets happen.

     dune exec examples/quickstart.exe
*)

open W5_difc
open W5_http
open W5_platform

let section title =
  Printf.printf "\n=== %s ===\n" title

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let figure_1 () =
  section "Figure 1: today's Web (no walls *inside*, walls *between*)";
  let open W5_apps.Silo_baseline in
  let flickr = create_site "photo-silo" in
  let upstart = create_site "upstart-silo" in
  set_data flickr ~user:"amy" ~key:"photos" ~value:"amy-beach.jpg";
  set_data flickr ~user:"amy" ~key:"music" ~value:"jazz,bossa";
  step "amy uploads photos and preferences to photo-silo";
  step "a malicious app on the silo exports everything: %S"
    (thief_export flickr ~user:"amy");
  step "her 'privacy settings' help only if the site honors them: %s"
    (match privacy_setting flickr ~user:"amy" ~honored:false with
    | Some _ -> "they did not, data gone"
    | None -> "honored");
  let n = migrate ~from_site:flickr ~to_site:upstart ~user:"amy" in
  step "switching to the upstart means re-entering %d items by hand" n

let figure_2 () =
  section "Figure 2: the W5 meta-application";
  let platform = Platform.create () in
  let dev = Principal.make Principal.Developer "core" in
  let publish r = match r with Ok _ -> () | Error e -> failwith e in
  publish (Result.map ignore (W5_apps.Social_app.publish platform ~dev));
  publish (Result.map ignore (W5_apps.Photo_app.publish platform ~dev));
  let mal = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  step "provider boots; developers publish social, photo and (yes) malicious apps";

  (* amy signs up once; her data lives with her, not with any app *)
  let amy = match Platform.signup platform ~user:"amy" ~password:"pw" with
    | Ok a -> a | Error e -> failwith e in
  List.iter
    (fun app ->
      (match Platform.enable_app platform ~user:"amy" ~app with
      | Ok () -> () | Error e -> failwith e);
      Policy.delegate_write amy.Account.policy app)
    [ "core/social"; "core/photos"; "mal/thief" ];
  let browser = Client.make ~name:"amy" (Gateway.handler platform) in
  ignore (Client.post browser "/login" ~form:[ ("user", "amy"); ("pass", "pw") ]);
  ignore
    (Client.post browser "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "beach"); ("data", "amy-beach.jpg") ]);
  ignore
    (Client.post browser "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "music"); ("value", "jazz,bossa") ]);
  step "amy stores photos and preferences ONCE, on the platform";

  (* the same data is visible to every app she enables; no re-upload *)
  let r = Client.get browser "/app/core/photos" ~params:[ ("action", "list") ] in
  step "the photo app lists her data: HTTP %d" (Response.status_code r.Response.status);

  (* and the thief she foolishly enabled cannot export a byte *)
  let evil_browser = Client.make ~name:"evil-dev" (Gateway.handler platform) in
  let r = Client.get evil_browser "/app/mal/thief" ~params:[ ("target", "amy") ] in
  step "the thief app reads her data freely but exports: HTTP %d (%s)"
    (Response.status_code r.Response.status)
    (String.sub r.Response.body 0 (min 40 (String.length r.Response.body)));
  step "amy's own browser still works: the boilerplate policy exports only to her";
  let r = Client.get browser "/app/core/social" ~params:[ ("user", "amy") ] in
  step "amy views her profile: HTTP %d" (Response.status_code r.Response.status);
  Printf.printf "\nRequests served by the meta-application: %d\n"
    (Platform.requests_served platform)

let () =
  figure_1 ();
  figure_2 ();
  print_endline "\nquickstart: done"
