(* The collaboration tour: groups, private messages, calendars and
   polls — four apps, four different shapes of "who may learn what",
   all built from the same tags, capabilities and declassifiers.

     dune exec examples/collaboration.exe
*)

open W5_http
open W5_platform

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let () =
  let platform = Platform.create () in
  let dev = W5_difc.Principal.make W5_difc.Principal.Developer "core" in
  let ok_s = function Ok v -> v | Error e -> failwith e in
  let ok_os = function
    | Ok v -> v
    | Error e -> failwith (W5_os.Os_error.to_string e)
  in
  ignore (ok_s (W5_apps.Message_app.publish platform ~dev));
  ignore (ok_s (W5_apps.Calendar_app.publish platform ~dev));
  ignore (ok_s (W5_apps.Poll_app.publish platform ~dev));
  let users = [ "ana"; "ben"; "cal"; "dee" ] in
  List.iter
    (fun user ->
      let account = ok_s (Platform.signup platform ~user ~password:"pw") in
      List.iter
        (fun app ->
          (match Platform.enable_app platform ~user ~app with
          | Ok () -> ()
          | Error e -> failwith e);
          Policy.delegate_write account.Account.policy app)
        [ "core/messages"; "core/calendar"; "core/polls" ])
    users;
  let login user =
    let c = Client.make ~name:user (Gateway.handler platform) in
    ignore (Client.post c "/login" ~form:[ ("user", user); ("pass", "pw") ]);
    c
  in

  print_endline "=== a group: circle-owned data ===";
  let ana = Platform.account_exn platform "ana" in
  let group = ok_s (Group.create platform ~founder:ana ~name:"expedition") in
  List.iter (fun u -> ignore (ok_s (Group.add_member platform group ~user:u)))
    [ "ben"; "cal" ];
  ignore
    (ok_os (Group.post platform group ~author:ana ~id:"r1" ~body:"route: west ridge"));
  step "ana founds 'expedition' (ben, cal join) and posts the route";
  let read who =
    let account = Platform.account_exn platform who in
    match Group.read_posts platform group ~reader:account with
    | Ok posts -> Printf.sprintf "%d post(s)" (List.length posts)
    | Error _ -> "denied (cannot even read)"
  in
  step "ben reads: %s; dee reads: %s" (read "ben") (read "dee");

  print_endline "\n=== private messages over the labeled store ===";
  let benc = login "ben" in
  ignore
    (Client.post benc "/app/core/messages"
       ~form:[ ("action", "send"); ("to", "ana"); ("body", "ropes packed") ]);
  ignore
    (Declassifier.install_and_authorize platform
       ~account:(Platform.account_exn platform "ben")
       ~name:"mail"
       (Declassifier.group ~members:[ "ana" ]));
  let anac = login "ana" in
  let r = Client.get anac "/app/core/messages" ~params:[ ("action", "inbox") ] in
  step "ben messages ana; ana's inbox: HTTP %d (%s)"
    (Response.status_code r.Response.status)
    (if Client.saw anac "ropes packed" then "message readable" else "hidden");

  print_endline "\n=== calendar: busy to friends, details to no one ===";
  ignore
    (Client.post anac "/app/core/calendar"
       ~form:
         [ ("action", "add"); ("id", "summit"); ("title", "SECRET summit bid");
           ("day", "5"); ("start", "4"); ("len", "8") ]);
  ignore
    (ok_os
       (Platform.write_user_record platform ana ~file:"friends"
          (W5_store.Record.of_fields [ ("friends", "ben") ])));
  ignore
    (Declassifier.install_and_authorize platform ~account:ana ~name:"busyfree"
       (Declassifier.redacting Declassifier.friends_only));
  let r =
    Client.get benc "/app/core/calendar" ~params:[ ("action", "week"); ("user", "ana") ]
  in
  step "ben sees ana's saturday: HTTP %d, slot visible %b, title hidden %b"
    (Response.status_code r.Response.status)
    (Client.saw benc "04:00-12:00")
    (not (Client.saw benc "SECRET summit bid"));

  print_endline "\n=== polls: tallies out, ballots never ===";
  List.iter
    (fun (user, choice) ->
      let account = Platform.account_exn platform user in
      ignore
        (Declassifier.install_and_authorize platform ~account ~name:"agg"
           (Declassifier.require_no_secrets Declassifier.everyone));
      let c = login user in
      ignore
        (Client.post c "/app/core/polls"
           ~form:[ ("action", "vote"); ("poll", "summit-day"); ("choice", choice) ]))
    [ ("ana", "saturday"); ("ben", "saturday"); ("cal", "sunday") ];
  let deec = login "dee" in
  let r = Client.get deec "/app/core/polls" ~params:[ ("action", "tally"); ("poll", "summit-day") ] in
  step "dee (not even a voter) reads the tally: HTTP %d" (Response.status_code r.Response.status);
  let r = Client.get deec "/app/core/polls" ~params:[ ("action", "ballots"); ("poll", "summit-day") ] in
  step "dee asks for raw ballots: HTTP %d (vetoed by the voters' rule)"
    (Response.status_code r.Response.status);
  print_endline "\ncollaboration: done"
