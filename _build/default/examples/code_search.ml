(* W5 code search (§3.2): rank a synthetic module ecosystem by the
   dependency graph (PageRank), popularity, and editorial judgment.

     dune exec examples/code_search.exe
*)

open W5_platform
open W5_rank
open W5_workload

let () =
  print_endline "=== a synthetic module ecosystem ===";
  let platform = Platform.create () in
  let ids =
    Populate.fill_dependency_graph ~seed:3 platform ~modules:40
      ~imports_per_module:3
  in
  Printf.printf "  published %d modules with a preferential-attachment import graph\n"
    (List.length ids);
  let registry = Platform.registry platform in
  let graph = Code_search.graph_of_registry registry in
  Printf.printf "  graph: %d nodes, %d edges; pagerank converges in %d iterations\n"
    (Depgraph.node_count graph) (Depgraph.edge_count graph)
    (Pagerank.iterations_to_converge graph);

  (* some organic popularity *)
  List.iteri
    (fun i id -> if i mod 7 = 0 then
        List.iter (fun _ -> App_registry.record_install registry id)
          (List.init (i + 2) Fun.id))
    ids;

  (* an editor with a following vets the scene *)
  let editor = Editor.create "the-w5-review" in
  List.iter (fun u -> Editor.subscribe editor ~user:("reader" ^ string_of_int u))
    (List.init 30 Fun.id);
  Editor.endorse editor ~app:(List.nth ids 5) ~reason:"audited, clean";
  Editor.flag_antisocial editor ~app:(List.nth ids 8) ~reason:"proprietary format";

  print_endline "\n=== top 10 by composite trust score ===";
  let results = Code_search.score_all ~editors:[ editor ] registry in
  List.iteri
    (fun i r ->
      if i < 10 then
        Printf.printf "  %2d. %-14s total=%.4f pr=%.4f pop=%.2f edit=%+.2f%s%s\n"
          (i + 1) r.Code_search.app_id r.Code_search.total r.Code_search.pagerank
          r.Code_search.popularity r.Code_search.editorial
          (if r.Code_search.auditable then " [open]" else " [bin]")
          (match r.Code_search.flagged_by with
          | [] -> ""
          | names -> " FLAGGED:" ^ String.concat "," names))
    results;

  print_endline "\n=== search: 'm000' ===";
  List.iter
    (fun r -> Printf.printf "  %s (%.4f)\n" r.Code_search.app_id r.Code_search.total)
    (List.filteri (fun i _ -> i < 5) (Code_search.search ~editors:[ editor ] registry ~query:"m000"));
  print_endline "\ncode_search: done"
