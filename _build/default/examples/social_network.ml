(* The paper's running example (§3.1) as a full scenario: Bob's
   profile goes to Alice (his friend), not to Charlie, not to the
   application's own author — enforced, not promised.

     dune exec examples/social_network.exe
*)

open W5_difc
open W5_http
open W5_platform

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let show name (r : Response.t) =
  step "%s -> HTTP %d%s" name
    (Response.status_code r.Response.status)
    (if Response.status_code r.Response.status = 403 then
       " (" ^ r.Response.body ^ ")"
     else "")

let () =
  print_endline "=== W5 social network walkthrough ===";
  let platform = Platform.create () in
  let dev = Principal.make Principal.Developer "sdev" in
  (match W5_apps.Social_app.publish platform ~dev with
  | Ok _ -> ()
  | Error e -> failwith e);
  step "developer 'sdev' uploads the social app (open source, auditable)";

  let signup name =
    match Platform.signup platform ~user:name ~password:"pw" with
    | Ok account ->
        (match Platform.enable_app platform ~user:name ~app:"sdev/social" with
        | Ok () -> ()
        | Error e -> failwith e);
        Policy.delegate_write account.Account.policy "sdev/social";
        account
    | Error e -> failwith e
  in
  let bob = signup "bob" in
  ignore (signup "alice");
  ignore (signup "charlie");
  step "bob, alice and charlie sign up; each enables the app with one click";

  let login name =
    let c = Client.make ~name (Gateway.handler platform) in
    ignore (Client.post c "/login" ~form:[ ("user", name); ("pass", "pw") ]);
    c
  in
  let bob_browser = login "bob" in
  ignore
    (Client.post bob_browser "/app/sdev/social"
       ~form:
         [ ("action", "set_profile"); ("field", "quote"); ("value", "My private quote") ]);
  ignore
    (Client.post bob_browser "/app/sdev/social"
       ~form:[ ("action", "add_friend"); ("friend", "alice") ]);
  step "bob fills his profile and befriends alice";

  print_endline "\n-- before bob authorizes any declassifier --";
  show "bob views bob" (Client.get bob_browser "/app/sdev/social" ~params:[ ("user", "bob") ]);
  let alice_browser = login "alice" in
  show "alice views bob"
    (Client.get alice_browser "/app/sdev/social" ~params:[ ("user", "bob") ]);
  step "(even friends are blocked: the boilerplate policy exports only to bob)";

  print_endline "\n-- bob authorizes the friends-only declassifier --";
  let gate =
    Declassifier.install_and_authorize platform ~account:bob ~name:"friends"
      Declassifier.friends_only
  in
  step "bob points his export rule at gate %S (small, auditable, reusable)" gate;
  show "alice views bob"
    (Client.get alice_browser "/app/sdev/social" ~params:[ ("user", "bob") ]);
  Printf.printf "    alice sees: %b (the private quote crossed the perimeter for her)\n"
    (Client.saw alice_browser "My private quote");
  let charlie_browser = login "charlie" in
  show "charlie views bob"
    (Client.get charlie_browser "/app/sdev/social" ~params:[ ("user", "bob") ]);
  let anon = Client.make (Gateway.handler platform) in
  show "anonymous views bob"
    (Client.get anon "/app/sdev/social" ~params:[ ("user", "bob") ]);

  print_endline "\n-- the audit trail (data-free) --";
  let denials = W5_os.Audit.denials (W5_os.Kernel.audit (Platform.kernel platform)) in
  List.iter
    (fun e -> Format.printf "  %a@." W5_os.Audit.pp_entry e)
    (List.filteri (fun i _ -> i < 5) denials);
  print_endline "\nsocial_network: done"
