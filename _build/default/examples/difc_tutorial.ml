(* A guided tour of the DIFC substrate itself — for readers adopting
   the w5.difc / w5.os libraries without the Web platform on top.

     dune exec examples/difc_tutorial.exe
*)

open W5_difc
open W5_os

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt
let show b = if b then "ALLOWED" else "DENIED"

let () =
  print_endline "=== 1. the lattice ===";
  let alice = Tag.fresh ~name:"alice" Tag.Secrecy in
  let bob = Tag.fresh ~name:"bob" Tag.Secrecy in
  let l_alice = Label.singleton alice in
  let l_both = Label.of_list [ alice; bob ] in
  step "flows go up the lattice: {alice} -> {alice,bob} is %s"
    (show (Label.subset l_alice l_both));
  step "and never down: {alice,bob} -> {alice} is %s"
    (show (Label.subset l_both l_alice));
  step "data derived from both sources carries the join: %s"
    (Label.to_string (Label.union l_alice (Label.singleton bob)));

  print_endline "\n=== 2. flows between labeled things ===";
  let secret_proc = Flow.make ~secrecy:l_alice () in
  let public_sink = Flow.bottom in
  step "tainted process -> public sink: %s"
    (show (Flow.can_flow secret_proc public_sink));
  (match Flow.check_flow secret_proc public_sink with
  | Error denial -> step "the explanation: %s" (Flow.denial_to_string denial)
  | Ok () -> ());
  step "public -> tainted is always fine: %s"
    (show (Flow.can_flow public_sink secret_proc));

  print_endline "\n=== 3. capabilities make exceptions principled ===";
  let caps = Capability.Set.grant_dual alice Capability.Set.empty in
  step "holding alice- lets a flow shed the tag: %s"
    (show (Flow.can_flow_with ~src_caps:caps secret_proc public_sink));
  step "the residual label without the capability: %s"
    (Label.to_string (Flow.export_blockers ~caps:Capability.Set.empty secret_proc));
  step "and with it: %s"
    (Label.to_string (Flow.export_blockers ~caps secret_proc));

  print_endline "\n=== 4. the same rules, enforced by a kernel ===";
  let kernel = Kernel.create () in
  let owner = Kernel.kernel_principal kernel in
  let spawn ?(labels = Flow.bottom) ?(caps = Capability.Set.empty) name body =
    match
      Kernel.spawn kernel ~name ~owner ~labels ~caps
        ~limits:Resource.unlimited body
    with
    | Ok proc ->
        Kernel.run_proc kernel proc;
        proc
    | Error e -> failwith (Os_error.to_string e)
  in
  (* a clean setup process may create a directory with a *higher*
     label (labeling up is safe); only a tainted process could not
     have created it in a public parent *)
  ignore
    (spawn "setup" (fun ctx ->
         match Syscall.mkdir ctx "/alice" ~labels:secret_proc with
         | Ok () -> step "setup created /alice with label {alice}"
         | Error e -> step "mkdir failed: %s" (Os_error.to_string e)));
  ignore
    (spawn "writer" ~labels:secret_proc (fun ctx ->
         match
           Syscall.create_file ctx "/alice/diary" ~labels:secret_proc
             ~data:"dear diary"
         with
         | Ok () -> step "a tainted process wrote /alice/diary (same label)"
         | Error e -> step "write failed: %s" (Os_error.to_string e)));
  ignore
    (spawn "reader" (fun ctx ->
         (match Syscall.read_file ctx "/alice/diary" with
         | Error e ->
             step "a clean process's strict read: DENIED (%s)"
               (Os_error.to_string e)
         | Ok _ -> step "strict read: ALLOWED?!");
         match Syscall.read_file_taint ctx "/alice/diary" with
         | Ok data ->
             step "a tainting read succeeds (%S) — and now my label is %s" data
               (Label.to_string (Syscall.my_labels ctx).Flow.secrecy)
         | Error e -> step "taint read failed: %s" (Os_error.to_string e)));
  ignore
    (spawn "leaker" ~labels:secret_proc (fun ctx ->
         match
           Syscall.create_file ctx "/public-copy" ~labels:Flow.bottom
             ~data:"stolen"
         with
         | Error e ->
             step "the tainted process tries to write low: DENIED (%s)"
               (Os_error.to_string e)
         | Ok () -> step "leak: ALLOWED?!"));
  ignore
    (spawn "declassifier" ~labels:secret_proc ~caps (fun ctx ->
         match Syscall.declassify_self ctx alice with
         | Ok () ->
             step "holding alice-, a process declassifies itself: label now %s"
               (Label.to_string (Syscall.my_labels ctx).Flow.secrecy)
         | Error e -> step "declassify failed: %s" (Os_error.to_string e)));
  step "every decision above is in the audit log: %d entries"
    (Audit.length (Kernel.audit kernel));
  print_endline "\ndifc_tutorial: done"
