(* The §2 "Examples" trio over one synthetic society:

   - the daily top-5 recommendation engine over friends' private data,
   - online dating with a user-supplied compatibility metric,
   - the chameleon profile that hides fields from chosen viewers.

     dune exec examples/recommendation.exe
*)

open W5_http
open W5_platform
open W5_workload

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let () =
  print_endline "=== building a small society (seeded, reproducible) ===";
  let society =
    Populate.build ~seed:11 ~users:8 ~friends_per_user:3 ~photos_per_user:2
      ~blog_posts_per_user:2 ()
  in
  let platform = society.Populate.platform in
  step "%d users, friend graph wired, %d requests served during seeding"
    (List.length society.Populate.users)
    (Platform.requests_served platform);
  let dev = W5_difc.Principal.make W5_difc.Principal.Developer "core" in
  let ok = function Ok _ -> () | Error e -> failwith e in
  ok (W5_apps.Recommend_app.publish platform ~dev);
  ok (W5_apps.Dating_app.publish platform ~dev);
  ok (W5_apps.Chameleon_app.publish platform ~dev);
  let everyone = society.Populate.users in
  List.iter
    (fun user ->
      List.iter
        (fun app ->
          (match Platform.enable_app platform ~user ~app with
          | Ok () -> ()
          | Error e -> failwith e);
          let account = Platform.account_exn platform user in
          Policy.delegate_write account.Account.policy app)
        [ "core/recommend"; "core/dating"; "core/chameleon" ])
    everyone;

  print_endline "\n=== the daily digest (recommendation engine) ===";
  let u0 = List.hd everyone in
  let c = Populate.login society u0 in
  let r = Client.get c "/app/core/recommend" ~params:[ ("k", "5") ] in
  step "%s's top-5 digest: HTTP %d" u0 (Response.status_code r.Response.status);
  step "(the engine read every friend's private items; each friend's";
  step " declassifier independently approved the export to %s)" u0;

  print_endline "\n=== dating with a custom metric ===";
  (* participants publish interests and a dating-circle declassifier *)
  let daters = List.filteri (fun i _ -> i < 4) everyone in
  List.iter
    (fun user ->
      let c = Populate.login society user in
      ignore
        (Client.post c "/app/core/social"
           ~form:
             [
               ("action", "set_profile");
               ("field", "interests");
               ( "value",
                 if user = List.nth daters 1 then "scifi,jazz"
                 else if user = List.nth daters 2 then "jazz"
                 else "opera" );
             ]);
      let account = Platform.account_exn platform user in
      ignore
        (Declassifier.install_and_authorize platform ~account ~name:"daters"
           (Declassifier.group ~members:daters)))
    daters;
  let seeker = List.hd daters in
  let c = Populate.login society seeker in
  ignore
    (Client.post c "/app/core/dating"
       ~form:[ ("action", "set_metric"); ("metric", "scifi:5,jazz:2") ]);
  let r = Client.get c "/app/core/dating" ~params:[ ("action", "match"); ("k", "3") ] in
  step "%s uploads metric scifi:5,jazz:2 and asks for matches: HTTP %d" seeker
    (Response.status_code r.Response.status);
  print_endline (r.Response.body);

  print_endline "\n=== the chameleon profile ===";
  let owner = List.nth everyone 1 and pal = List.nth everyone 2
  and crush = List.nth everyone 3 in
  let c = Populate.login society owner in
  ignore
    (Client.post c "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "books"); ("value", "scifi-novels") ]);
  ignore
    (Client.post c "/app/core/chameleon"
       ~form:[ ("action", "hide"); ("field", "books"); ("from", crush) ]);
  let account = Platform.account_exn platform owner in
  ignore
    (Declassifier.install_and_authorize platform ~account ~name:"public"
       Declassifier.everyone);
  let view who =
    let c = Populate.login society who in
    let _ = Client.get c "/app/core/chameleon" ~params:[ ("user", owner) ] in
    Client.saw c "scifi-novels"
  in
  step "%s hides 'books' from %s; %s sees books: %b; %s sees books: %b" owner
    crush pal (view pal) crush (view crush);

  (* the digest "sent by e-mail" (Â§2): the mailer takes the same
     perimeter path a browser does *)
  print_endline "\n=== the daily e-mail batch ===";
  let stats =
    Mailer.run_digests platform ~app:"core/recommend" ~query:[ ("k", "5") ]
      ~subject:"your daily digest" ()
  in
  step "digests: %d delivered, %d refused by declassifiers, %d skipped"
    stats.Mailer.delivered stats.Mailer.refused stats.Mailer.skipped;
  step "%s's mailbox now holds %d message(s)" u0
    (Mailer.outbox_size platform ~user:u0);
  print_endline "\nrecommendation: done"
