examples/difc_tutorial.mli:
