examples/difc_tutorial.ml: Audit Capability Flow Kernel Label Os_error Printf Resource Syscall Tag W5_difc W5_os
