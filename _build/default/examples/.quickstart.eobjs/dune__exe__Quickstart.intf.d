examples/quickstart.mli:
