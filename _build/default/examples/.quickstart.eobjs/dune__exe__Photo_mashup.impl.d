examples/photo_mashup.ml: Account Client Gateway List Platform Policy Principal Printf Response String W5_apps W5_difc W5_http W5_os W5_platform
