examples/federation_sync.ml: Platform Printf Record Sync W5_federation W5_os W5_platform W5_store
