examples/collaboration.ml: Account Client Declassifier Gateway Group List Platform Policy Printf Response W5_apps W5_difc W5_http W5_os W5_platform W5_store
