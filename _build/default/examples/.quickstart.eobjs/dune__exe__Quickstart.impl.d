examples/quickstart.ml: Account Client Gateway List Platform Policy Principal Printf Response Result String W5_apps W5_difc W5_http W5_platform
