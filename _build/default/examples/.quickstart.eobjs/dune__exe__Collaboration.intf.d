examples/collaboration.mli:
