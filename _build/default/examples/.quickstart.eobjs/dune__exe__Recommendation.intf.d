examples/recommendation.mli:
