examples/photo_mashup.mli:
