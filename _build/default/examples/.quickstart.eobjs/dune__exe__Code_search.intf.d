examples/code_search.mli:
