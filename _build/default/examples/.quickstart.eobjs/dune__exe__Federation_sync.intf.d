examples/federation_sync.mli:
