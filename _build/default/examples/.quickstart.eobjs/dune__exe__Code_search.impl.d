examples/code_search.ml: App_registry Code_search Depgraph Editor Fun List Pagerank Platform Populate Printf String W5_platform W5_rank W5_workload
