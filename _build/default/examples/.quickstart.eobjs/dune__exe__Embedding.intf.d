examples/embedding.mli:
