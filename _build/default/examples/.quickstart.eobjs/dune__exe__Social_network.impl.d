examples/social_network.ml: Account Client Declassifier Format Gateway List Platform Policy Principal Printf Response W5_apps W5_difc W5_http W5_os W5_platform
