examples/provider_ops.mli:
