examples/embedding.ml: App_registry Gateway Platform Printf Syscall W5_difc W5_http W5_os W5_platform
