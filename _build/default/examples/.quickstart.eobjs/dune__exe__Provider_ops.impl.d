examples/provider_ops.ml: Admin Client Gateway List Platform Populate Printf Rate_limit Response Rng String Trace W5_apps W5_difc W5_http W5_os W5_platform W5_workload
