examples/recommendation.ml: Account Client Declassifier List Mailer Platform Policy Populate Printf Response W5_apps W5_difc W5_http W5_platform W5_workload
