(* Two §2/§4 stories in one run:

   1. Pluggable modules: the user picks which developer's crop module
      processes her photos ("use developer A's photo cropping module").
   2. The server-side mashup: her private address book is drawn on a
      map without the map developer ever being able to take the
      addresses home — even when the map module actively tries.

     dune exec examples/photo_mashup.exe
*)

open W5_difc
open W5_http
open W5_platform

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  - %s\n" s) fmt

let () =
  print_endline "=== photos with user-chosen modules ===";
  let platform = Platform.create () in
  let core = Principal.make Principal.Developer "core" in
  let dev_a = Principal.make Principal.Developer "devA" in
  let dev_b = Principal.make Principal.Developer "devB" in
  let gmaps = Principal.make Principal.Developer "gmaps" in
  let gmaps_evil = Principal.make Principal.Developer "gmaps-evil" in
  let ok = function Ok _ -> () | Error e -> failwith e in
  ok (W5_apps.Photo_app.publish platform ~dev:core);
  ok (W5_apps.Mashup_app.publish platform ~dev:core);
  ok (W5_apps.Photo_app.publish_crop_module platform ~dev:dev_a ~name:"crop" ~style:`Head);
  ok (W5_apps.Photo_app.publish_crop_module platform ~dev:dev_b ~name:"crop" ~style:`Frame);
  ok (W5_apps.Mashup_app.publish_map_module platform ~dev:gmaps ~name:"render" ~evil:false);
  ok (W5_apps.Mashup_app.publish_map_module platform ~dev:gmaps_evil ~name:"render" ~evil:true);

  let account =
    match Platform.signup platform ~user:"amy" ~password:"pw" with
    | Ok a -> a
    | Error e -> failwith e
  in
  List.iter
    (fun app ->
      (match Platform.enable_app platform ~user:"amy" ~app with
      | Ok () -> ()
      | Error e -> failwith e);
      Policy.delegate_write account.Account.policy app)
    [ "core/photos"; "core/mashup"; "devA/crop"; "devB/crop" ];
  let amy = Client.make ~name:"amy" (Gateway.handler platform) in
  ignore (Client.post amy "/login" ~form:[ ("user", "amy"); ("pass", "pw") ]);
  ignore
    (Client.post amy "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "pier"); ("data", "PIXELROW-ABCDEFGH") ]);
  step "amy uploads a photo";

  let view () =
    (Client.get amy "/app/core/photos"
       ~params:[ ("action", "view"); ("user", "amy"); ("id", "pier"); ("size", "8") ])
      .Response.body
  in
  step "no module chosen: %s" (String.sub (view ()) 0 80);
  Policy.choose_module account.Account.policy ~slot:"photo.crop" ~module_id:"devA/crop";
  step "with devA's head-crop: %s" (String.sub (view ()) 0 80);
  Policy.choose_module account.Account.policy ~slot:"photo.crop" ~module_id:"devB/crop";
  step "with devB's framer:   %s" (String.sub (view ()) 0 80);

  print_endline "\n=== asynchronous thumbnails (a labeled worker) ===";
  (match W5_apps.Thumb_service.install platform ~user:"amy" with
  | Ok _ -> () | Error e -> failwith (W5_os.Os_error.to_string e));
  let r = Client.post amy "/app/core/photos" ~form:[ ("action", "thumb"); ("id", "pier") ] in
  step "amy queues a thumbnail job: HTTP %d" (Response.status_code r.Response.status);
  (match W5_apps.Thumb_service.pump_for platform ~user:"amy" with
  | Ok n -> step "the worker ran %d job(s); it held write access only while serving amy" n
  | Error e -> failwith (W5_os.Os_error.to_string e));
  let r =
    Client.get amy "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "amy"); ("id", "pier.thumb") ]
  in
  step "the thumbnail is in her collection: HTTP %d" (Response.status_code r.Response.status);

  print_endline "\n=== the address-book mashup (\u{00a7}4) ===";
  List.iter
    (fun (name, street) ->
      ignore
        (Client.post amy "/app/core/mashup"
           ~form:[ ("action", "add"); ("name", name); ("street", street) ]))
    [ ("mom", "12 Elm Street"); ("dentist", "99 Oak Avenue"); ("work", "1 Infinite Loop") ];
  step "amy's address book has 3 private entries";
  let r = Client.get amy "/app/core/mashup" ~params:[ ("action", "map") ] in
  step "server-side map rendered for amy: HTTP %d" (Response.status_code r.Response.status);

  (* now the hostile renderer *)
  Policy.choose_module account.Account.policy ~slot:"map.render"
    ~module_id:"gmaps-evil/render";
  let r = Client.get amy "/app/core/mashup" ~params:[ ("action", "map") ] in
  step "evil renderer still draws the map: HTTP %d" (Response.status_code r.Response.status);
  let stash_exists =
    match
      Platform.with_ctx platform ~name:"inspect" (fun ctx ->
          Ok (W5_os.Syscall.file_exists ctx "/apps/gmaps-evil/stash"))
    with
    | Ok b -> b
    | Error _ -> false
  in
  step "its attempt to stash her addresses for later pickup: %s"
    (if stash_exists then "SUCCEEDED (bug!)" else "DENIED by the kernel");
  step
    "contrast with the client-side mashup of \u{00a7}4: there, the map API call \
     itself ships the addresses to the map vendor";
  print_endline "\nphoto_mashup: done"
