(* Tests for the paper's example applications (E10/E12) and the
   adversarial battery (E1/E3/E7), all exercised end-to-end through
   the HTTP gateway. *)

open W5_difc
open W5_http
open W5_platform

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok_s = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let status (r : Response.t) = Response.status_code r.Response.status

(* A fully loaded world: all example apps and modules published. *)
type world = {
  platform : Platform.t;
  core_dev : Principal.t;
}

let make_world () =
  let platform = Platform.create () in
  let core_dev = Principal.make Principal.Developer "core" in
  let dev_a = Principal.make Principal.Developer "devA" in
  let dev_b = Principal.make Principal.Developer "devB" in
  let gmaps = Principal.make Principal.Developer "gmaps" in
  let gmaps_evil = Principal.make Principal.Developer "gmaps-evil" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev:core_dev));
  ignore (ok_s (W5_apps.Photo_app.publish platform ~dev:core_dev));
  ignore (ok_s (W5_apps.Blog_app.publish platform ~dev:core_dev));
  ignore (ok_s (W5_apps.Recommend_app.publish platform ~dev:core_dev));
  ignore (ok_s (W5_apps.Dating_app.publish platform ~dev:core_dev));
  ignore (ok_s (W5_apps.Chameleon_app.publish platform ~dev:core_dev));
  ignore (ok_s (W5_apps.Mashup_app.publish platform ~dev:core_dev));
  ignore
    (ok_s (W5_apps.Photo_app.publish_crop_module platform ~dev:dev_a ~name:"crop" ~style:`Head));
  ignore
    (ok_s (W5_apps.Photo_app.publish_crop_module platform ~dev:dev_b ~name:"crop" ~style:`Frame));
  ignore
    (ok_s (W5_apps.Mashup_app.publish_map_module platform ~dev:gmaps ~name:"render" ~evil:false));
  ignore
    (ok_s
       (W5_apps.Mashup_app.publish_map_module platform ~dev:gmaps_evil ~name:"render" ~evil:true));
  ignore (W5_apps.Malicious.publish_all platform ~dev:(Principal.make Principal.Developer "mal"));
  { platform; core_dev }

let all_apps =
  [
    "core/social"; "core/photos"; "core/blog"; "core/recommend"; "core/dating";
    "core/chameleon"; "core/mashup"; "devA/crop"; "devB/crop"; "gmaps/render";
    "gmaps-evil/render"; "mal/thief"; "mal/vandal"; "mal/hog"; "mal/spammer";
    "mal/hoarder"; "mal/prober";
  ]

let add_user world name =
  let account = ok_s (Platform.signup world.platform ~user:name ~password:(name ^ "-pw")) in
  List.iter
    (fun app ->
      ok_s (Platform.enable_app world.platform ~user:name ~app);
      Policy.delegate_write account.Account.policy app)
    all_apps;
  account

let login world name =
  let client = Client.make ~name (Gateway.handler world.platform) in
  let r = Client.post client "/login" ~form:[ ("user", name); ("pass", name ^ "-pw") ] in
  check bool_c (name ^ " login") true (Response.is_success r);
  client

let befriend world ~who ~friend_name =
  let c = login world who in
  let r =
    Client.post c "/app/core/social"
      ~form:[ ("action", "add_friend"); ("friend", friend_name) ]
  in
  check int_c (who ^ " befriends " ^ friend_name) 200 (status r);
  check bool_c "confirmation" true (Client.saw c ("now friends with " ^ friend_name))

let install_friends_declassifier world name =
  let account = Platform.account_exn world.platform name in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"friends"
       Declassifier.friends_only)

(* ---- photos + crop modules ---- *)

let test_photo_upload_and_view () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  let r =
    Client.post alice "/app/core/photos"
      ~form:[ ("action", "upload"); ("id", "sunset"); ("data", "RAWPIXELDATA") ]
  in
  check int_c "upload" 200 (status r);
  let r =
    Client.get alice "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "alice"); ("id", "sunset") ]
  in
  check int_c "view" 200 (status r);
  check bool_c "raw data shown (no module chosen)" true
    (Client.saw alice "RAWPIXELDATA");
  let r = Client.get alice "/app/core/photos" ~params:[ ("action", "list") ] in
  check int_c "list" 200 (status r);
  check bool_c "listed" true (Client.saw alice "sunset")

let test_photo_crop_module_choice () =
  let world = make_world () in
  let account = add_user world "bob" in
  let bob = login world "bob" in
  ignore
    (Client.post bob "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "p"); ("data", "ABCDEFGHIJKL") ]);
  (* choose developer A's cropper: head crop *)
  Policy.choose_module account.Account.policy ~slot:"photo.crop" ~module_id:"devA/crop";
  let r =
    Client.get bob "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "bob"); ("id", "p"); ("size", "4") ]
  in
  check int_c "view A" 200 (status r);
  check bool_c "head crop" true (Client.saw bob "ABCD");
  check bool_c "not full" false (Client.saw bob "ABCDEFGHIJKL");
  (* switch to developer B's framing module *)
  Policy.choose_module account.Account.policy ~slot:"photo.crop" ~module_id:"devB/crop";
  let r =
    Client.get bob "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "bob"); ("id", "p") ]
  in
  check int_c "view B" 200 (status r);
  check bool_c "framed" true (Client.saw bob "[[ABCDEFGHIJKL]]")

let test_photo_requires_write_delegation () =
  let world = make_world () in
  let account = add_user world "carol" in
  Policy.revoke_write account.Account.policy "core/photos";
  let carol = login world "carol" in
  let r =
    Client.post carol "/app/core/photos"
      ~form:[ ("action", "upload"); ("id", "x"); ("data", "d") ]
  in
  check int_c "still 200 (error page)" 200 (status r);
  check bool_c "refused politely" true (Client.saw carol "write not delegated")

let test_photo_cross_user_via_declassifier () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (add_user world "bob");
  let alice = login world "alice" in
  ignore
    (Client.post alice "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "priv"); ("data", "ALICEPIXELS") ]);
  befriend world ~who:"alice" ~friend_name:"bob";
  install_friends_declassifier world "alice";
  let bob = login world "bob" in
  let r =
    Client.get bob "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "alice"); ("id", "priv") ]
  in
  check int_c "friend sees photo" 200 (status r);
  check bool_c "pixels" true (Client.saw bob "ALICEPIXELS");
  (* the same declassifier covers the blog app: data-structure
     agnosticism (§3.1) *)
  ignore
    (Client.post alice "/app/core/blog"
       ~form:
         [ ("action", "post"); ("id", "e1"); ("title", "Hi"); ("body", "ALICEWORDS") ]);
  let r = Client.get bob "/app/core/blog" ~params:[ ("action", "read"); ("user", "alice") ] in
  check int_c "friend reads blog" 200 (status r);
  check bool_c "words" true (Client.saw bob "ALICEWORDS")

(* ---- blog ---- *)

let test_blog_roundtrip () =
  let world = make_world () in
  ignore (add_user world "wri");
  let c = login world "wri" in
  List.iter
    (fun (id, title, body) ->
      let r =
        Client.post c "/app/core/blog"
          ~form:[ ("action", "post"); ("id", id); ("title", title); ("body", body) ]
      in
      check int_c ("post " ^ id) 200 (status r))
    [ ("a", "First", "hello world"); ("b", "Second", "more words") ];
  let r = Client.get c "/app/core/blog" ~params:[ ("action", "read"); ("user", "wri") ] in
  check int_c "read all" 200 (status r);
  check bool_c "first" true (Client.saw c "hello world");
  check bool_c "second" true (Client.saw c "more words");
  let r =
    Client.get c "/app/core/blog"
      ~params:[ ("action", "read"); ("user", "wri"); ("id", "a") ]
  in
  check int_c "read one" 200 (status r)

(* ---- recommendation engine ---- *)

let test_recommendation_digest () =
  let world = make_world () in
  ignore (add_user world "bob");
  ignore (add_user world "f1");
  ignore (add_user world "f2");
  (* friends post content *)
  List.iter
    (fun (who, id, body) ->
      let c = login world who in
      ignore
        (Client.post c "/app/core/blog"
           ~form:[ ("action", "post"); ("id", id); ("title", id); ("body", body) ]))
    [
      ("f1", "long", String.make 80 'x');
      ("f1", "short", "tiny");
      ("f2", "mid", String.make 40 'y');
    ];
  (* friendship is directional: bob's list drives what the engine
     scans; f1/f2's lists drive what their declassifiers export *)
  befriend world ~who:"bob" ~friend_name:"f1";
  befriend world ~who:"bob" ~friend_name:"f2";
  befriend world ~who:"f1" ~friend_name:"bob";
  befriend world ~who:"f2" ~friend_name:"bob";
  install_friends_declassifier world "f1";
  install_friends_declassifier world "f2";
  let bob = login world "bob" in
  let r = Client.get bob "/app/core/recommend" ~params:[ ("k", "2") ] in
  check int_c "digest" 200 (status r);
  check bool_c "top item is the long post" true (Client.saw bob "f1/long");
  check bool_c "runner-up" true (Client.saw bob "f2/mid");
  check bool_c "k respected" false (Client.saw bob "f1/short");
  (* a stranger cannot pull bob's digest of f1/f2 content: the
     declassifiers refuse — unless they also friend the stranger *)
  ignore (add_user world "stranger");
  befriend world ~who:"stranger" ~friend_name:"f1";
  let stranger = login world "stranger" in
  let r = Client.get stranger "/app/core/recommend" ~params:[ ("k", "2") ] in
  (* stranger's own friends list includes f1, so the digest contains
     f1's data; f1's declassifier approves only f1's friends, and f1
     never befriended the stranger *)
  check int_c "stranger blocked" 403 (status r)

(* ---- dating ---- *)

let test_dating_matchmaker () =
  let world = make_world () in
  ignore (add_user world "bob");
  List.iter
    (fun (name, interests) ->
      let account = add_user world name in
      ignore account;
      let c = login world name in
      ignore
        (Client.post c "/app/core/social"
           ~form:
             [ ("action", "set_profile"); ("field", "interests"); ("value", interests) ]);
      (* daters opt into a dating-wide export group *)
      let account = Platform.account_exn world.platform name in
      ignore
        (Declassifier.install_and_authorize world.platform ~account ~name:"daters"
           (Declassifier.group ~members:[ "bob"; "cand1"; "cand2"; "cand3" ])))
    [
      ("cand1", "scifi,jazz,climbing");
      ("cand2", "jazz");
      ("cand3", "opera");
    ];
  let bob = login world "bob" in
  let r =
    Client.post bob "/app/core/dating"
      ~form:[ ("action", "set_metric"); ("metric", "scifi:5,jazz:2") ]
  in
  check int_c "metric saved" 200 (status r);
  let r = Client.get bob "/app/core/dating" ~params:[ ("action", "match"); ("k", "2") ] in
  check int_c "match" 200 (status r);
  check bool_c "best match" true (Client.saw bob "cand1 (score 7)");
  check bool_c "second" true (Client.saw bob "cand2 (score 2)");
  check bool_c "opera fan filtered by k" false (Client.saw bob "cand3")

let test_dating_needs_metric () =
  let world = make_world () in
  ignore (add_user world "solo");
  let c = login world "solo" in
  let r = Client.get c "/app/core/dating" ~params:[ ("action", "match") ] in
  check int_c "asks for metric" 200 (status r);
  check bool_c "hint" true (Client.saw c "set a compatibility metric first")

(* ---- chameleon ---- *)

let test_chameleon_profile () =
  let world = make_world () in
  ignore (add_user world "bob");
  ignore (add_user world "buddy");
  ignore (add_user world "crush");
  let bob = login world "bob" in
  ignore
    (Client.post bob "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "books"); ("value", "scifi-novels") ]);
  ignore
    (Client.post bob "/app/core/chameleon"
       ~form:[ ("action", "hide"); ("field", "books"); ("from", "crush") ]);
  (* bob exports to everyone so both viewers get pages; the filtering
     is the app's server-side logic *)
  let account = Platform.account_exn world.platform "bob" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"public"
       Declassifier.everyone);
  let buddy = login world "buddy" in
  let r = Client.get buddy "/app/core/chameleon" ~params:[ ("user", "bob") ] in
  check int_c "buddy ok" 200 (status r);
  check bool_c "buddy sees books" true (Client.saw buddy "scifi-novels");
  let crush = login world "crush" in
  let r = Client.get crush "/app/core/chameleon" ~params:[ ("user", "bob") ] in
  check int_c "crush ok" 200 (status r);
  check bool_c "books hidden from crush" false (Client.saw crush "scifi-novels")

(* ---- mashup (E10) ---- *)

let seed_addressbook world name =
  let c = login world name in
  List.iter
    (fun (n, street) ->
      let r =
        Client.post c "/app/core/mashup"
          ~form:[ ("action", "add"); ("name", n); ("street", street) ]
      in
      check int_c ("add " ^ n) 200 (status r))
    [ ("mom", "12 Elm Street"); ("dentist", "99 Oak Avenue") ];
  c

let test_mashup_renders_server_side () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = seed_addressbook world "alice" in
  let r = Client.get alice "/app/core/mashup" ~params:[ ("action", "map") ] in
  check int_c "map" 200 (status r);
  check bool_c "grid rendered" true (Client.saw alice "*")

let test_mashup_evil_module_cannot_stash () =
  let world = make_world () in
  let account = add_user world "victim" in
  Policy.choose_module account.Account.policy ~slot:"map.render"
    ~module_id:"gmaps-evil/render";
  let victim = seed_addressbook world "victim" in
  let r = Client.get victim "/app/core/mashup" ~params:[ ("action", "map") ] in
  (* the map still renders for the victim... *)
  check int_c "map renders" 200 (status r);
  (* ...but the stash attempt was denied by the kernel: no file *)
  let exists =
    match
      Platform.with_ctx world.platform ~name:"inspect" (fun ctx ->
          Ok (W5_os.Syscall.file_exists ctx "/apps/gmaps-evil/stash"))
    with
    | Ok b -> b
    | Error _ -> false
  in
  check bool_c "no stash" false exists;
  (* and the audit log shows the denial *)
  let denials = W5_os.Audit.denials (W5_os.Kernel.audit (Platform.kernel world.platform)) in
  check bool_c "denial audited" true (List.length denials >= 1)

(* ---- malicious battery ---- *)

let test_thief_blocked () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  ignore
    (Client.post alice "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "ssn"); ("value", "SSN-123-45") ]);
  (* the thief's developer browses anonymously *)
  let attacker = Client.make ~name:"attacker" (Gateway.handler world.platform) in
  let r = Client.get attacker "/app/mal/thief" ~params:[ ("target", "alice") ] in
  check int_c "export refused" 403 (status r);
  check bool_c "no ssn" false (Client.saw attacker "SSN-123-45");
  (* even a logged-in non-owner gets nothing *)
  ignore (add_user world "mallory");
  let mallory = login world "mallory" in
  let r = Client.get mallory "/app/mal/thief" ~params:[ ("target", "alice") ] in
  check int_c "refused for mallory" 403 (status r);
  check bool_c "mallory no ssn" false (Client.saw mallory "SSN-123-45");
  (* the owner can run the thief on herself: it reads, cannot copy *)
  let r = Client.get alice "/app/mal/thief" ~params:[ ("target", "alice") ] in
  check int_c "owner sees own data" 200 (status r);
  check bool_c "copy denied" true (Client.saw alice "copy-to-public denied")

let test_vandal_blocked () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (add_user world "mallory");
  let mallory = login world "mallory" in
  let r = Client.get mallory "/app/mal/vandal" ~params:[ ("target", "alice") ] in
  check int_c "vandal report" 200 (status r);
  check bool_c "nothing allowed" false (Client.saw mallory "ALLOWED (bug!)");
  (* alice's data is intact *)
  let alice = login world "alice" in
  let r = Client.get alice "/app/core/social" ~params:[ ("user", "alice") ] in
  check int_c "profile fine" 200 (status r);
  check bool_c "not vandalized" false (Client.saw alice "VANDALIZED")

let test_hog_dies_by_quota_others_fine () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  let r = Client.get alice "/app/mal/hog" in
  check int_c "hog killed" 429 (status r);
  (* platform still serves others *)
  let r = Client.get alice "/app/core/social" ~params:[ ("user", "alice") ] in
  check int_c "still serving" 200 (status r)

let test_spammer_dies_by_quota () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  let r = Client.get alice "/app/mal/spammer" in
  check int_c "spammer killed" 429 (status r)

let test_hoarder_allowed_but_flaggable () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  let r =
    Client.post alice "/app/mal/hoarder"
      ~form:[ ("action", "import"); ("data", "my plain data") ]
  in
  (* nothing in W5 prevents anti-social storage (§3.2)... *)
  check int_c "hoarder runs" 200 (status r);
  check bool_c "scramble is an involution" true
    (W5_apps.Malicious.scramble (W5_apps.Malicious.scramble "my plain data")
    = "my plain data");
  (* ...the defense is editorial *)
  let editor = W5_rank.Editor.create "watchdog" in
  W5_rank.Editor.flag_antisocial editor ~app:"mal/hoarder" ~reason:"proprietary format";
  let results =
    W5_rank.Code_search.score_all ~editors:[ editor ] (Platform.registry world.platform)
  in
  let hoarder = List.find (fun r -> r.W5_rank.Code_search.app_id = "mal/hoarder") results in
  check bool_c "flag visible in search" true
    (hoarder.W5_rank.Code_search.flagged_by = [ "watchdog" ])

(* ---- silo baseline (F1) ---- *)

let test_silo_baseline_contrast () =
  let open W5_apps.Silo_baseline in
  let flickr = create_site "flickr-like" in
  let facebook = create_site "facebook-like" in
  set_data flickr ~user:"amy" ~key:"photo" ~value:"AMYPIX";
  set_data flickr ~user:"amy" ~key:"music" ~value:"jazz";
  set_data facebook ~user:"amy" ~key:"music" ~value:"jazz";
  (* 1. a thief app on a silo site exports everything, trust is the
     only barrier *)
  let loot = thief_export flickr ~user:"amy" in
  check bool_c "silo thief wins" true
    (String.length loot > 0
    &&
    let has sub =
      let rec scan i =
        i + String.length sub <= String.length loot
        && (String.sub loot i (String.length sub) = sub || scan (i + 1))
      in
      scan 0
    in
    has "AMYPIX");
  (* 2. "privacy settings" only work if honored *)
  check bool_c "honored" true (privacy_setting flickr ~user:"amy" ~honored:true = None);
  check bool_c "not honored" true
    (privacy_setting flickr ~user:"amy" ~honored:false <> None);
  (* 3. migration = manual re-upload of every item *)
  let newsite = create_site "upstart" in
  let reuploads = migrate ~from_site:flickr ~to_site:newsite ~user:"amy" in
  check int_c "re-upload count" 2 reuploads;
  (* 4. the same preference lives in N places — and the migration
     just minted copy number three *)
  check int_c "duplication" 3
    (duplication_factor [ flickr; facebook; newsite ] ~user:"amy" ~key:"music")

let suite =
  [
    Alcotest.test_case "photo upload and view" `Quick test_photo_upload_and_view;
    Alcotest.test_case "photo crop module choice" `Quick
      test_photo_crop_module_choice;
    Alcotest.test_case "photo requires write delegation" `Quick
      test_photo_requires_write_delegation;
    Alcotest.test_case "photo cross-user via declassifier" `Quick
      test_photo_cross_user_via_declassifier;
    Alcotest.test_case "blog roundtrip" `Quick test_blog_roundtrip;
    Alcotest.test_case "recommendation digest" `Quick test_recommendation_digest;
    Alcotest.test_case "dating matchmaker" `Quick test_dating_matchmaker;
    Alcotest.test_case "dating needs metric" `Quick test_dating_needs_metric;
    Alcotest.test_case "chameleon profile" `Quick test_chameleon_profile;
    Alcotest.test_case "mashup renders server side" `Quick
      test_mashup_renders_server_side;
    Alcotest.test_case "mashup evil module cannot stash" `Quick
      test_mashup_evil_module_cannot_stash;
    Alcotest.test_case "thief blocked" `Quick test_thief_blocked;
    Alcotest.test_case "vandal blocked" `Quick test_vandal_blocked;
    Alcotest.test_case "hog dies by quota" `Quick test_hog_dies_by_quota_others_fine;
    Alcotest.test_case "spammer dies by quota" `Quick test_spammer_dies_by_quota;
    Alcotest.test_case "hoarder allowed but flaggable" `Quick
      test_hoarder_allowed_but_flaggable;
    Alcotest.test_case "silo baseline contrast" `Quick test_silo_baseline_contrast;
  ]

(* ---- messaging over the labeled store ---- *)

let publish_messages world =
  ignore
    (ok_s (W5_apps.Message_app.publish world.platform ~dev:world.core_dev));
  List.iter
    (fun user ->
      ok_s (Platform.enable_app world.platform ~user ~app:"core/messages"))
    (List.map (fun (a : Account.t) -> a.Account.user)
       (Platform.accounts world.platform))

let test_message_send_and_inbox () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (add_user world "bob");
  publish_messages world;
  let alice = login world "alice" in
  let r =
    Client.post alice "/app/core/messages"
      ~form:[ ("action", "send"); ("to", "bob"); ("body", "MEET-AT-NOON") ]
  in
  check int_c "send" 200 (status r);
  (* bob cannot read it yet: the message carries alice's tag and she
     has no declassifier *)
  let bob = login world "bob" in
  let r = Client.get bob "/app/core/messages" ~params:[ ("action", "inbox") ] in
  check int_c "blocked" 403 (status r);
  (* alice authorizes her correspondents *)
  let account = Platform.account_exn world.platform "alice" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"mail"
       (Declassifier.group ~members:[ "bob" ]));
  let bob2 = login world "bob" in
  let r = Client.get bob2 "/app/core/messages" ~params:[ ("action", "inbox") ] in
  check int_c "inbox" 200 (status r);
  check bool_c "message delivered" true (Client.saw bob2 "MEET-AT-NOON");
  (* filtering by sender uses the same safe query *)
  let r =
    Client.get bob2 "/app/core/messages"
      ~params:[ ("action", "from"); ("sender", "alice") ]
  in
  check int_c "filter" 200 (status r)

let test_message_third_party_cannot_peek () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (add_user world "bob");
  ignore (add_user world "eve");
  publish_messages world;
  let alice = login world "alice" in
  ignore
    (Client.post alice "/app/core/messages"
       ~form:[ ("action", "send"); ("to", "bob"); ("body", "FOR-BOB-ONLY") ]);
  let account = Platform.account_exn world.platform "alice" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"mail"
       (Declassifier.group ~members:[ "bob" ]));
  (* eve asks for BOB's inbox: the query engine reads it (tainting the
     process with bob's tag too), and the perimeter refuses eve *)
  let eve = login world "eve" in
  let r = Client.get eve "/app/core/messages" ~params:[ ("action", "inbox") ] in
  (* eve's own inbox is empty -> fine *)
  check int_c "own inbox ok" 200 (status r);
  check bool_c "no snooping" false (Client.saw eve "FOR-BOB-ONLY")

let suite =
  suite
  @ [
      Alcotest.test_case "message send and inbox" `Quick
        test_message_send_and_inbox;
      Alcotest.test_case "message third party cannot peek" `Quick
        test_message_third_party_cannot_peek;
    ]

(* ---- calendar: busy/free via a redacting declassifier ---- *)

let test_calendar_busy_free () =
  let world = make_world () in
  ignore (add_user world "owner");
  ignore (add_user world "friendo");
  ignore (ok_s (W5_apps.Calendar_app.publish world.platform ~dev:world.core_dev));
  List.iter
    (fun user ->
      ok_s (Platform.enable_app world.platform ~user ~app:"core/calendar");
      let account = Platform.account_exn world.platform user in
      Policy.delegate_write account.Account.policy "core/calendar")
    [ "owner"; "friendo" ];
  let owner = login world "owner" in
  let r =
    Client.post owner "/app/core/calendar"
      ~form:
        [
          ("action", "add"); ("id", "standup"); ("title", "SECRET-THERAPY");
          ("day", "1"); ("start", "9"); ("len", "2");
        ]
  in
  check int_c "event stored" 200 (status r);
  befriend world ~who:"owner" ~friend_name:"friendo";
  (* the owner's export rule: friends may see a *redacted* page *)
  let account = Platform.account_exn world.platform "owner" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"busyfree"
       (Declassifier.redacting Declassifier.friends_only));
  (* owner sees the full title *)
  let r = Client.get owner "/app/core/calendar" ~params:[ ("action", "week"); ("user", "owner") ] in
  check int_c "owner week" 200 (status r);
  check bool_c "owner sees title" true (Client.saw owner "SECRET-THERAPY");
  (* the friend sees the slot but not the title *)
  let friendo = login world "friendo" in
  let r = Client.get friendo "/app/core/calendar" ~params:[ ("action", "week"); ("user", "owner") ] in
  check int_c "friend week" 200 (status r);
  check bool_c "slot visible" true (Client.saw friendo "09:00-11:00");
  check bool_c "title redacted" false (Client.saw friendo "SECRET-THERAPY");
  (* a stranger sees nothing at all *)
  ignore (add_user world "nosy");
  ignore (ok_s (Platform.enable_app world.platform ~user:"nosy" ~app:"core/calendar"));
  let nosy = login world "nosy" in
  let r = Client.get nosy "/app/core/calendar" ~params:[ ("action", "week"); ("user", "owner") ] in
  check int_c "stranger blocked" 403 (status r)

(* ---- polls: aggregates flow, ballots are vetoed ---- *)

let test_poll_tally_flows_ballots_blocked () =
  let world = make_world () in
  ignore (ok_s (W5_apps.Poll_app.publish world.platform ~dev:world.core_dev));
  let voters = [ "v1"; "v2"; "v3" ] in
  List.iter
    (fun user ->
      ignore (add_user world user);
      ok_s (Platform.enable_app world.platform ~user ~app:"core/polls");
      let account = Platform.account_exn world.platform user in
      (* "my data may leave in aggregate, never row by row" *)
      ignore
        (Declassifier.install_and_authorize world.platform ~account
           ~name:"aggregate-only"
           (Declassifier.require_no_secrets Declassifier.everyone)))
    voters;
  List.iter
    (fun (user, choice) ->
      let c = login world user in
      let r =
        Client.post c "/app/core/polls"
          ~form:[ ("action", "vote"); ("poll", "lunch"); ("choice", choice) ]
      in
      check int_c (user ^ " votes") 200 (status r))
    [ ("v1", "pizza"); ("v2", "pizza"); ("v3", "salad") ];
  (* anyone — even a logged-out client — can see the tally *)
  let anon = Client.make (Gateway.handler world.platform) in
  ignore (add_user world "reader");
  let reader = login world "reader" in
  ignore (ok_s (Platform.enable_app world.platform ~user:"reader" ~app:"core/polls"));
  let r = Client.get reader "/app/core/polls" ~params:[ ("action", "tally"); ("poll", "lunch") ] in
  check int_c "tally flows" 200 (status r);
  check bool_c "counts" true (Client.saw reader "pizza: 2" && Client.saw reader "salad: 1");
  ignore anon;
  (* the ballots view is vetoed for the same reader *)
  let r = Client.get reader "/app/core/polls" ~params:[ ("action", "ballots"); ("poll", "lunch") ] in
  check int_c "ballots vetoed" 403 (status r);
  check bool_c "no raw votes seen" false (Client.saw reader "v1 voted")

(* ---- rate limiting at the front door ---- *)

let test_rate_limit () =
  let world = make_world () in
  ignore (add_user world "alice");
  Platform.set_rate_limit world.platform
    (Some (Rate_limit.create ~capacity:5 ~refill_per_tick:0 ()));
  let alice = login world "alice" in
  let statuses =
    List.init 8 (fun _ ->
        status (Client.get alice "/app/core/social" ~params:[ ("user", "alice") ]))
  in
  let ok_count = List.length (List.filter (( = ) 200) statuses) in
  let throttled = List.length (List.filter (( = ) 429) statuses) in
  check int_c "five served" 5 ok_count;
  check int_c "three throttled" 3 throttled;
  (* provider routes are not throttled *)
  let r = Client.get alice "/audit" in
  check int_c "audit still served" 200 (status r)

let suite =
  suite
  @ [
      Alcotest.test_case "calendar busy/free" `Quick test_calendar_busy_free;
      Alcotest.test_case "poll tally flows, ballots blocked" `Quick
        test_poll_tally_flows_ballots_blocked;
      Alcotest.test_case "rate limit" `Quick test_rate_limit;
    ]

(* ---- the daily digest as outbound mail (§2) ---- *)

let test_digest_email_respects_declassifiers () =
  let world = make_world () in
  ignore (add_user world "bob");
  ignore (add_user world "pal");
  ignore (add_user world "loner");
  (* pal posts something and befriends bob; bob lists pal as friend *)
  let palc = login world "pal" in
  ignore
    (Client.post palc "/app/core/blog"
       ~form:[ ("action", "post"); ("id", "x"); ("title", "t"); ("body", "PALWORDS") ]);
  befriend world ~who:"bob" ~friend_name:"pal";
  befriend world ~who:"pal" ~friend_name:"bob";
  install_friends_declassifier world "pal";
  (* loner also enabled the app; their only friend is bob, who posts
     content but never authorizes a declassifier *)
  befriend world ~who:"loner" ~friend_name:"bob";
  let bobc = login world "bob" in
  ignore
    (Client.post bobc "/app/core/blog"
       ~form:[ ("action", "post"); ("id", "y"); ("title", "t"); ("body", "BOBWORDS") ]);
  (* bob's own data has no declassifier — not needed for his own mail *)
  let stats =
    Mailer.run_digests world.platform ~app:"core/recommend"
      ~query:[ ("k", "3") ] ~subject:"your daily digest" ()
  in
  (* bob gets mail; loner is refused (friend bob never authorized a
     declassifier); pal gets mail (bob is in pal's digest? pal's friend
     list has bob, and bob has no declassifier -> refused too) *)
  check bool_c "some delivered" true (stats.Mailer.delivered >= 1);
  check bool_c "some refused" true (stats.Mailer.refused >= 1);
  check int_c "bob has mail" 1 (Mailer.outbox_size world.platform ~user:"bob");
  (match Mailer.outbox world.platform ~user:"bob" with
  | [ email ] ->
      check string_c "to" "bob" email.Mailer.to_user;
      check bool_c "content exported" true
        (let body = email.Mailer.body in
         let needle = "pal/x" in
         let rec scan i =
           i + String.length needle <= String.length body
           && (String.sub body i (String.length needle) = needle || scan (i + 1))
         in
         scan 0)
  | _ -> Alcotest.fail "expected exactly one email");
  check int_c "loner has no mail" 0 (Mailer.outbox_size world.platform ~user:"loner");
  (* clearing works *)
  Mailer.clear_outbox world.platform ~user:"bob";
  check int_c "cleared" 0 (Mailer.outbox_size world.platform ~user:"bob")

(* ---- code search as an app ---- *)

let test_search_app_over_http () =
  let world = make_world () in
  ignore (add_user world "alice");
  let editor = W5_rank.Editor.create "mag" in
  W5_rank.Editor.flag_antisocial editor ~app:"mal/hoarder" ~reason:"proprietary";
  ignore
    (ok_s
       (W5_rank.Code_search.publish_search_app world.platform
          ~dev:(Principal.make Principal.Developer "provider")
          ~editors:[ editor ] ()));
  (* public: even anonymous clients can search *)
  let anon = Client.make (Gateway.handler world.platform) in
  let r = Client.get anon "/app/provider/search" ~params:[ ("q", "crop") ] in
  check int_c "search ok" 200 (status r);
  check bool_c "finds both croppers" true
    (Client.saw anon "devA/crop" && Client.saw anon "devB/crop");
  check bool_c "no unrelated hits" false (Client.saw anon "core/blog");
  let r = Client.get anon "/app/provider/search" ~params:[ ("q", "hoarder") ] in
  check int_c "flag search ok" 200 (status r);
  check bool_c "flag surfaced" true (Client.saw anon "FLAGGED by mag")

let suite =
  suite
  @ [
      Alcotest.test_case "digest email respects declassifiers" `Quick
        test_digest_email_respects_declassifiers;
      Alcotest.test_case "search app over http" `Quick test_search_app_over_http;
    ]

(* ---- blog comments: cross-user data stays its writer's ---- *)

let test_blog_comments () =
  let world = make_world () in
  ignore (add_user world "author");
  ignore (add_user world "fan");
  let author = login world "author" in
  ignore
    (Client.post author "/app/core/blog"
       ~form:[ ("action", "post"); ("id", "e"); ("title", "T"); ("body", "B") ]);
  (* the fan comments *)
  let fan = login world "fan" in
  let r =
    Client.post fan "/app/core/blog"
      ~form:
        [ ("action", "comment"); ("user", "author"); ("id", "e");
          ("text", "FAN-SAYS-HI") ]
  in
  check int_c "comment posted" 200 (status r);
  (* commenting on a ghost entry fails *)
  let r =
    Client.post fan "/app/core/blog"
      ~form:
        [ ("action", "comment"); ("user", "author"); ("id", "ghost"); ("text", "x") ]
  in
  check bool_c "ghost entry rejected" true (Client.saw fan "no such entry");
  ignore r;
  (* the author authorizes friends; fan is not yet a friend: the page
     with the fan's comment is refused even for the author?! No — the
     page carries BOTH tags; the author's own tag passes via the
     boilerplate, the fan's tag needs the fan's declassifier. *)
  let r = Client.get author "/app/core/blog" ~params:[ ("action", "read"); ("user", "author") ] in
  check int_c "author blocked while fan has no declassifier" 403 (status r);
  (* the fan authorizes exports to the author *)
  let fan_account = Platform.account_exn world.platform "fan" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account:fan_account
       ~name:"commenters"
       (Declassifier.group ~members:[ "author" ]));
  let author2 = login world "author" in
  let r = Client.get author2 "/app/core/blog" ~params:[ ("action", "read"); ("user", "author") ] in
  check int_c "author reads with comment" 200 (status r);
  check bool_c "comment visible" true (Client.saw author2 "FAN-SAYS-HI");
  (* a third party needs BOTH declassifiers *)
  ignore (add_user world "reader");
  let reader = login world "reader" in
  let r = Client.get reader "/app/core/blog" ~params:[ ("action", "read"); ("user", "author") ] in
  check int_c "reader blocked (author tag)" 403 (status r)

let suite =
  suite @ [ Alcotest.test_case "blog comments" `Quick test_blog_comments ]

(* ---- additional app edge cases ---- *)

let test_photo_view_missing_and_bad_params () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  let r =
    Client.get alice "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "alice"); ("id", "ghost") ]
  in
  check int_c "missing photo is an error page" 200 (status r);
  check bool_c "explains" true (Client.saw alice "not found");
  let r = Client.get alice "/app/core/photos" ~params:[ ("action", "view") ] in
  check bool_c "missing params" true (Client.saw alice "user and id required");
  let r2 = Client.get alice "/app/core/photos" ~params:[ ("action", "explode") ] in
  check bool_c "unknown action" true (Client.saw alice "unknown action");
  ignore (r, r2)

let test_messages_to_ghost_user () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (ok_s (W5_apps.Message_app.publish world.platform ~dev:world.core_dev));
  ok_s (Platform.enable_app world.platform ~user:"alice" ~app:"core/messages");
  let alice = login world "alice" in
  let r =
    Client.post alice "/app/core/messages"
      ~form:[ ("action", "send"); ("to", "nobody"); ("body", "hi") ]
  in
  check int_c "error page" 200 (status r);
  check bool_c "explains" true (Client.saw alice "no such user")

let test_dating_default_k_and_empty_pool () =
  let world = make_world () in
  ignore (add_user world "solo2");
  let c = login world "solo2" in
  ignore
    (Client.post c "/app/core/dating"
       ~form:[ ("action", "set_metric"); ("metric", "x:1") ]);
  let r = Client.get c "/app/core/dating" ~params:[ ("action", "match") ] in
  (* nobody else has interests: empty list, not an error *)
  check int_c "empty pool ok" 200 (status r)

let test_chameleon_anonymous_viewer_conservative () =
  let world = make_world () in
  ignore (add_user world "owner2");
  let owner = login world "owner2" in
  ignore
    (Client.post owner "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "books"); ("value", "HIDDENBOOKS") ]);
  ignore
    (Client.post owner "/app/core/chameleon"
       ~form:[ ("action", "hide"); ("field", "books"); ("from", "whoever") ]);
  let account = Platform.account_exn world.platform "owner2" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"public"
       Declassifier.everyone);
  (* anonymous clients get the most conservative page: hidden fields
     are omitted for unknown viewers *)
  let anon = Client.make (Gateway.handler world.platform) in
  let r = Client.get anon "/app/core/chameleon" ~params:[ ("user", "owner2") ] in
  check int_c "served" 200 (status r);
  check bool_c "hidden field omitted for anonymous" false (Client.saw anon "HIDDENBOOKS")

let test_hoarder_without_delegation () =
  let world = make_world () in
  let account = add_user world "wary" in
  Policy.revoke_write account.Account.policy "mal/hoarder";
  let wary = login world "wary" in
  let r =
    Client.post wary "/app/mal/hoarder" ~form:[ ("action", "import"); ("data", "d") ]
  in
  check int_c "page" 200 (status r);
  check bool_c "write refused" true (Client.saw wary "write not delegated")

let suite =
  suite
  @ [
      Alcotest.test_case "photo error paths" `Quick
        test_photo_view_missing_and_bad_params;
      Alcotest.test_case "messages to ghost user" `Quick test_messages_to_ghost_user;
      Alcotest.test_case "dating empty pool" `Quick
        test_dating_default_k_and_empty_pool;
      Alcotest.test_case "chameleon anonymous conservative" `Quick
        test_chameleon_anonymous_viewer_conservative;
      Alcotest.test_case "hoarder without delegation" `Quick
        test_hoarder_without_delegation;
    ]

(* ---- a malicious *module* inside a benign app's pipeline ---- *)

let test_malicious_crop_module_contained () =
  let world = make_world () in
  let account = add_user world "victim2" in
  (* a hostile crop module: tries to stash its input, then returns it *)
  let evil_dev = Principal.make Principal.Developer "evilcrop" in
  let evil_handler ctx (env : App_registry.env) =
    let data =
      Request.param_or env.App_registry.request "data" ~default:""
    in
    ignore
      (W5_os.Syscall.create_file ctx "/apps/crop-loot" ~labels:Flow.bottom
         ~data);
    ignore (W5_os.Syscall.respond ctx data)
  in
  ignore
    (ok_s
       (App_registry.publish (Platform.registry world.platform) ~dev:evil_dev
          ~name:"crop" ~version:"1.0" evil_handler));
  Policy.choose_module account.Account.policy ~slot:"photo.crop"
    ~module_id:"evilcrop/crop";
  let victim = login world "victim2" in
  ignore
    (Client.post victim "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "p"); ("data", "VICTIMPIXELS") ]);
  let r =
    Client.get victim "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "victim2"); ("id", "p") ]
  in
  (* the pipeline still works for the owner *)
  check int_c "view ok" 200 (status r);
  check bool_c "owner sees pixels" true (Client.saw victim "VICTIMPIXELS");
  (* but the stash was denied: the module ran inside the tainted
     process and could not write low *)
  let looted =
    match
      Platform.with_ctx world.platform ~name:"check" (fun ctx ->
          Ok (W5_os.Syscall.file_exists ctx "/apps/crop-loot"))
    with
    | Ok b -> b
    | Error _ -> false
  in
  check bool_c "no loot" false looted

let suite =
  suite
  @ [
      Alcotest.test_case "malicious crop module contained" `Quick
        test_malicious_crop_module_contained;
    ]

(* ---- the covert-channel prober, end to end (E8) ---- *)

let test_prober_cannot_export_the_bit () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (add_user world "bob");
  ignore (add_user world "eve");
  publish_messages world;
  (* alice messages bob: one row now exists in bob's inbox *)
  let alice = login world "alice" in
  let r =
    Client.post alice "/app/core/messages"
      ~form:[ ("action", "send"); ("to", "bob"); ("body", "hello") ]
  in
  check int_c "message sent" 200 (status r);
  (* eve probes bob's inbox for the existence bit *)
  let eve = login world "eve" in
  let r =
    Client.get eve "/app/mal/prober" ~params:[ ("collection", "inbox-bob") ]
  in
  check int_c "bit refused" 403 (status r);
  check bool_c "no bit leaked" false (Client.saw eve "BIT:1");
  (* probing an empty/nonexistent collection reveals nothing secret:
     that is an honest error, exportable *)
  let r =
    Client.get eve "/app/mal/prober" ~params:[ ("collection", "inbox-nobody") ]
  in
  check int_c "empty probe is a plain error" 200 (status r);
  check bool_c "count failed note" true (Client.saw eve "count failed")

let suite =
  suite
  @ [
      Alcotest.test_case "prober cannot export the bit" `Quick
        test_prober_cannot_export_the_bit;
    ]

(* ---- unfriending revokes access immediately ---- *)

let test_unfriend_revokes_access () =
  let world = make_world () in
  ignore (add_user world "alice");
  ignore (add_user world "bob");
  let alice = login world "alice" in
  ignore
    (Client.post alice "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "diary"); ("value", "PRIVATE-NOTE") ]);
  befriend world ~who:"alice" ~friend_name:"bob";
  install_friends_declassifier world "alice";
  let bob = login world "bob" in
  let r = Client.get bob "/app/core/social" ~params:[ ("user", "alice") ] in
  check int_c "friend sees page" 200 (status r);
  (* alice unfriends bob *)
  let r =
    Client.post alice "/app/core/social"
      ~form:[ ("action", "remove_friend"); ("friend", "bob") ]
  in
  check int_c "unfriended" 200 (status r);
  check bool_c "confirmation" true (Client.saw alice "no longer friends with bob");
  (* the very next request is refused: the declassifier reads the
     friends list live, there is no stale grant to revoke *)
  let bob2 = login world "bob" in
  let r = Client.get bob2 "/app/core/social" ~params:[ ("user", "alice") ] in
  check int_c "access gone" 403 (status r);
  check bool_c "no note" false (Client.saw bob2 "PRIVATE-NOTE")

let test_photo_delete () =
  let world = make_world () in
  ignore (add_user world "alice");
  let alice = login world "alice" in
  ignore
    (Client.post alice "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "tmp"); ("data", "D") ]);
  let r = Client.get alice "/app/core/photos" ~params:[ ("action", "list") ] in
  check bool_c "listed" true (Client.saw alice "tmp");
  ignore r;
  let r = Client.post alice "/app/core/photos" ~form:[ ("action", "delete"); ("id", "tmp") ] in
  check int_c "deleted" 200 (status r);
  let alice2 = login world "alice" in
  let r = Client.get alice2 "/app/core/photos" ~params:[ ("action", "list") ] in
  check int_c "list again" 200 (status r);
  check bool_c "gone" false (Client.saw alice2 "tmp");
  (* deleting someone else's photo still impossible: the handler only
     ever touches the viewer's own directory, and even a patched app
     would hit write protection (see vandal test) *)
  ignore r

let suite =
  suite
  @ [
      Alcotest.test_case "unfriend revokes access" `Quick
        test_unfriend_revokes_access;
      Alcotest.test_case "photo delete" `Quick test_photo_delete;
    ]

(* ---- more app behaviors ---- *)

let test_poll_revote_overwrites () =
  let world = make_world () in
  ignore (ok_s (W5_apps.Poll_app.publish world.platform ~dev:world.core_dev));
  ignore (add_user world "v");
  ok_s (Platform.enable_app world.platform ~user:"v" ~app:"core/polls");
  let account = Platform.account_exn world.platform "v" in
  ignore
    (Declassifier.install_and_authorize world.platform ~account ~name:"agg"
       (Declassifier.require_no_secrets Declassifier.everyone));
  let c = login world "v" in
  ignore
    (Client.post c "/app/core/polls"
       ~form:[ ("action", "vote"); ("poll", "p"); ("choice", "yes") ]);
  ignore
    (Client.post c "/app/core/polls"
       ~form:[ ("action", "vote"); ("poll", "p"); ("choice", "no") ]);
  let r = Client.get c "/app/core/polls" ~params:[ ("action", "tally"); ("poll", "p") ] in
  check int_c "tally" 200 (status r);
  check bool_c "revote replaced" true (Client.saw c "no: 1");
  check bool_c "no stale vote" false (Client.saw c "yes: 1")

let test_calendar_rejects_bad_day () =
  let world = make_world () in
  ignore (ok_s (W5_apps.Calendar_app.publish world.platform ~dev:world.core_dev));
  ignore (add_user world "cal");
  ok_s (Platform.enable_app world.platform ~user:"cal" ~app:"core/calendar");
  let account = Platform.account_exn world.platform "cal" in
  Policy.delegate_write account.Account.policy "core/calendar";
  let c = login world "cal" in
  let r =
    Client.post c "/app/core/calendar"
      ~form:
        [ ("action", "add"); ("id", "x"); ("title", "t"); ("day", "9");
          ("start", "1"); ("len", "1") ]
  in
  check int_c "error page" 200 (status r);
  check bool_c "explains" true (Client.saw c "day (0-6)")

let test_message_to_self () =
  let world = make_world () in
  ignore (add_user world "solo3");
  publish_messages world;
  let c = login world "solo3" in
  ignore
    (Client.post c "/app/core/messages"
       ~form:[ ("action", "send"); ("to", "solo3"); ("body", "note to self") ]);
  (* own tag only: the boilerplate policy suffices, no declassifier *)
  let r = Client.get c "/app/core/messages" ~params:[ ("action", "inbox") ] in
  check int_c "inbox" 200 (status r);
  check bool_c "note visible" true (Client.saw c "note to self")

let test_silo_helpers () =
  let open W5_apps.Silo_baseline in
  let s = create_site "s" in
  check string_c "name" "s" (site_name s);
  set_data s ~user:"u" ~key:"k" ~value:"v";
  set_data s ~user:"u" ~key:"k" ~value:"v2";
  check (Alcotest.option string_c) "overwrite" (Some "v2") (get_data s ~user:"u" ~key:"k");
  check (Alcotest.list string_c) "users" [ "u" ] (users s);
  check int_c "data_of" 1 (List.length (data_of s ~user:"u"));
  check (Alcotest.list (Alcotest.pair string_c string_c)) "empty user" []
    (data_of s ~user:"ghost")

let suite =
  suite
  @ [
      Alcotest.test_case "poll revote overwrites" `Quick test_poll_revote_overwrites;
      Alcotest.test_case "calendar rejects bad day" `Quick
        test_calendar_rejects_bad_day;
      Alcotest.test_case "message to self" `Quick test_message_to_self;
      Alcotest.test_case "silo helpers" `Quick test_silo_helpers;
    ]

(* ---- defaults and anonymous behavior ---- *)

let test_social_defaults_to_viewer () =
  let world = make_world () in
  ignore (add_user world "selfie");
  let c = login world "selfie" in
  (* no ?user= parameter: the app shows the viewer's own profile *)
  let r = Client.get c "/app/core/social" in
  check int_c "own page" 200 (status r);
  check bool_c "own name" true (Client.saw c "selfie");
  (* anonymous with no user param: error page, no crash *)
  let anon = Client.make (Gateway.handler world.platform) in
  let r = Client.get anon "/app/core/social" in
  check int_c "anon no target" 200 (status r);
  check bool_c "explains" true (Client.saw anon "user required")

let test_recommend_requires_login () =
  let world = make_world () in
  let anon = Client.make (Gateway.handler world.platform) in
  let r = Client.get anon "/app/core/recommend" in
  check int_c "login prompt" 200 (status r);
  check bool_c "prompted" true (Client.saw anon "please log in")

let test_group_member_caps_after_removal () =
  let world = make_world () in
  let founder = add_user world "gf" in
  ignore (add_user world "gm");
  let group = ok_s (Group.create world.platform ~founder ~name:"caps-check") in
  ignore (ok_s (Group.add_member world.platform group ~user:"gm"));
  check int_c "member has one group cap" 1
    (Capability.Set.cardinal (Group.member_caps world.platform ~user:"gm"));
  ignore (ok_s (Group.remove_member world.platform group ~user:"gm"));
  check int_c "caps revoked" 0
    (Capability.Set.cardinal (Group.member_caps world.platform ~user:"gm"))

let suite =
  suite
  @ [
      Alcotest.test_case "social defaults to viewer" `Quick
        test_social_defaults_to_viewer;
      Alcotest.test_case "recommend requires login" `Quick
        test_recommend_requires_login;
      Alcotest.test_case "group member caps after removal" `Quick
        test_group_member_caps_after_removal;
    ]

(* ---- asynchronous thumbnailing via the per-user worker ---- *)

let ok_s' = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (W5_os.Os_error.to_string e)

let test_thumbnail_worker () =
  let world = make_world () in
  ignore (add_user world "shutter");
  ignore (ok_s' (W5_apps.Thumb_service.install world.platform ~user:"shutter"));
  let c = login world "shutter" in
  ignore
    (Client.post c "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "pic"); ("data", "ABCDEFGHIJKLMNOP") ]);
  let r = Client.post c "/app/core/photos" ~form:[ ("action", "thumb"); ("id", "pic") ] in
  check int_c "queued" 200 (status r);
  check bool_c "confirmation" true (Client.saw c "thumbnail queued");
  (* nothing exists until the worker runs *)
  let c2 = login world "shutter" in
  let r = Client.get c2 "/app/core/photos" ~params:[ ("action", "list") ] in
  check bool_c "no thumb yet" false (Client.saw c2 "pic.thumb");
  ignore r;
  (* pump the worker: one job done *)
  check int_c "one job" 1 (ok_s' (W5_apps.Thumb_service.pump_for world.platform ~user:"shutter"));
  let c3 = login world "shutter" in
  let r = Client.get c3 "/app/core/photos" ~params:[ ("action", "list") ] in
  check bool_c "thumb listed" true (Client.saw c3 "pic.thumb");
  ignore r;
  let r =
    Client.get c3 "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "shutter"); ("id", "pic.thumb") ]
  in
  check int_c "thumb viewable" 200 (status r);
  check bool_c "rendered" true (Client.saw c3 "ABCDEFGH~thumb");
  (* the worker holds no standing write privilege: a request without
     write delegation queues a job the worker cannot complete *)
  let account = Platform.account_exn world.platform "shutter" in
  Policy.revoke_write account.Account.policy "core/photos";
  let c4 = login world "shutter" in
  ignore (Client.post c4 "/app/core/photos" ~form:[ ("action", "thumb"); ("id", "pic") ]);
  ignore (W5_apps.Thumb_service.pump_for world.platform ~user:"shutter");
  (* no crash, no new write: pic.thumb still holds the old rendering *)
  let r =
    Client.get c4 "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "shutter"); ("id", "pic.thumb") ]
  in
  check int_c "still served" 200 (status r)

let suite =
  suite
  @ [ Alcotest.test_case "thumbnail worker" `Quick test_thumbnail_worker ]

(* ---- the groups app over HTTP ---- *)

let test_group_app_wall () =
  let world = make_world () in
  let founder = add_user world "gfound" in
  ignore (add_user world "gmem");
  ignore (add_user world "gout");
  ignore (ok_s (W5_apps.Group_app.publish world.platform ~dev:world.core_dev));
  List.iter
    (fun user -> ok_s (Platform.enable_app world.platform ~user ~app:"core/groups"))
    [ "gfound"; "gmem"; "gout" ];
  let group = ok_s (Group.create world.platform ~founder ~name:"hikers") in
  ignore (ok_s (Group.add_member world.platform group ~user:"gmem"));
  (* the founder posts over HTTP *)
  let fc = login world "gfound" in
  let r =
    Client.post fc "/app/core/groups"
      ~form:[ ("action", "post"); ("group", "hikers"); ("id", "p1");
              ("body", "TRAILHEAD-7AM") ]
  in
  check int_c "posted" 200 (status r);
  (* a member reads the wall *)
  let mc = login world "gmem" in
  let r = Client.get mc "/app/core/groups" ~params:[ ("action", "wall"); ("group", "hikers") ] in
  check int_c "member wall" 200 (status r);
  check bool_c "post visible" true (Client.saw mc "TRAILHEAD-7AM");
  (* membership listing *)
  let r = Client.get mc "/app/core/groups" in
  check bool_c "lists hikers" true (Client.saw mc "hikers");
  ignore r;
  (* an outsider cannot read (denied at absorb) and cannot post *)
  let oc = login world "gout" in
  let r = Client.get oc "/app/core/groups" ~params:[ ("action", "wall"); ("group", "hikers") ] in
  check bool_c "outsider wall blocked" true
    (status r <> 200 || not (Client.saw oc "TRAILHEAD-7AM"));
  let r =
    Client.post oc "/app/core/groups"
      ~form:[ ("action", "post"); ("group", "hikers"); ("id", "spam"); ("body", "x") ]
  in
  check bool_c "outsider cannot post" true (Client.saw oc "not a member");
  ignore r;
  (* outsider's own groups page is empty and harmless *)
  let r = Client.get oc "/app/core/groups" in
  check int_c "mine ok" 200 (status r);
  (* assert on this page alone: earlier *denial* pages legitimately
     name the tag (data-free), the membership page must not list it *)
  check bool_c "no hikers in membership page" false
    (let body = r.Response.body in
     let needle = "<li>hikers</li>" in
     let rec scan i =
       i + String.length needle <= String.length body
       && (String.sub body i (String.length needle) = needle || scan (i + 1))
     in
     scan 0)

let suite =
  suite @ [ Alcotest.test_case "group app wall" `Quick test_group_app_wall ]

(* ---- composition: cross-user view through a chosen module ---- *)

let test_cross_user_view_through_module () =
  let world = make_world () in
  ignore (add_user world "alice");
  let bob_account = add_user world "bob" in
  let alice = login world "alice" in
  ignore
    (Client.post alice "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "p"); ("data", "SHAREDPIXELS") ]);
  befriend world ~who:"alice" ~friend_name:"bob";
  install_friends_declassifier world "alice";
  (* bob views alice's photo through HIS chosen framer module: the
     module runs inside a process tainted with alice's tag, and the
     framed output still needs alice's declassifier to reach bob *)
  Policy.choose_module bob_account.Account.policy ~slot:"photo.crop"
    ~module_id:"devB/crop";
  let bob = login world "bob" in
  let r =
    Client.get bob "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "alice"); ("id", "p") ]
  in
  check int_c "framed cross-user view" 200 (status r);
  check bool_c "framed output crossed" true (Client.saw bob "[[SHAREDPIXELS]]");
  (* a stranger with the same module choice gets nothing *)
  let eve_account = add_user world "eve2" in
  Policy.choose_module eve_account.Account.policy ~slot:"photo.crop"
    ~module_id:"devB/crop";
  let eve = login world "eve2" in
  let r =
    Client.get eve "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "alice"); ("id", "p") ]
  in
  check int_c "stranger refused" 403 (status r)

let suite =
  suite
  @ [
      Alcotest.test_case "cross-user view through module" `Quick
        test_cross_user_view_through_module;
    ]

(* ---- remaining route/behavior edges ---- *)

let test_mashup_empty_addressbook () =
  let world = make_world () in
  ignore (add_user world "empty-amy");
  let c = login world "empty-amy" in
  let r = Client.get c "/app/core/mashup" ~params:[ ("action", "map") ] in
  (* no address book yet: an honest error page, not a crash *)
  check int_c "served" 200 (status r);
  check bool_c "explains" true (Client.saw c "not found")

let test_calendar_free_week () =
  let world = make_world () in
  ignore (ok_s (W5_apps.Calendar_app.publish world.platform ~dev:world.core_dev));
  ignore (add_user world "idle");
  ok_s (Platform.enable_app world.platform ~user:"idle" ~app:"core/calendar");
  let c = login world "idle" in
  let r = Client.get c "/app/core/calendar" ~params:[ ("action", "week") ] in
  check int_c "week" 200 (status r);
  check bool_c "all free" true (Client.saw c "free")

let test_thief_on_missing_target () =
  let world = make_world () in
  ignore (add_user world "mallory2");
  let c = login world "mallory2" in
  let r = Client.get c "/app/mal/thief" ~params:[ ("target", "ghost") ] in
  check int_c "thief on ghost" 200 (status r);
  check bool_c "nothing to steal" true (Client.saw c "could not even read")

let suite =
  suite
  @ [
      Alcotest.test_case "mashup empty addressbook" `Quick
        test_mashup_empty_addressbook;
      Alcotest.test_case "calendar free week" `Quick test_calendar_free_week;
      Alcotest.test_case "thief on missing target" `Quick
        test_thief_on_missing_target;
    ]
