test/test_workload.ml: Alcotest Format Fun List Option Populate Rng String Trace W5_http W5_platform W5_rank W5_workload
