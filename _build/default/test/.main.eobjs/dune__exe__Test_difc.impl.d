test/test_difc.ml: Alcotest Array Capability Flow Format Label List Principal Printf QCheck QCheck_alcotest String Tag W5_difc
