test/test_soak.ml: Alcotest Client Flow Label List Platform Populate Principal Printf Response Rng String Trace W5_apps W5_difc W5_http W5_os W5_platform W5_store W5_workload
