test/test_store.ml: Alcotest Capability Char Flow Format Kernel Label List Obj_store Os_error Proc QCheck QCheck_alcotest Query Record Resource String Syscall Tag W5_difc W5_os W5_store
