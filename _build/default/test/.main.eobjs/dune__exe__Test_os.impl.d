test/test_os.ml: Alcotest Array Audit Capability Char Flow Format Fs Fun Kernel Label List Os_error Printf Proc QCheck QCheck_alcotest Queue Resource Service String Syscall Tag W5_difc W5_os
