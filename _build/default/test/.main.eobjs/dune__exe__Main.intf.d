test/main.mli:
