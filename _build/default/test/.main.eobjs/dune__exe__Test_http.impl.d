test/test_http.ml: Alcotest Char Client Dns Format Headers Html List Printf QCheck QCheck_alcotest Request Response Session String Uri W5_http
