(* Soak test: a long seeded trace over a populated society, checked
   against global invariants rather than per-request expectations.

   Invariants after ~1000 mixed actions (plus attacks):
   - no request ever produced an unexpected status (5xx/4xx other than
     the sanctioned 403/429);
   - every export of a user's data went to the owner or through one of
     their declassifiers (spot-checked: no client body carries another
     user's planted canary unless befriended);
   - the audit log accounts for every perimeter refusal;
   - the filesystem never contains a bottom-labeled copy of a canary. *)

open W5_difc
open W5_http
open W5_platform
open W5_workload

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let canary user = "CANARY-" ^ user ^ "-END"

let test_soak ~seed () =
  let society =
    Populate.build ~seed ~users:12 ~friends_per_user:3 ~photos_per_user:2
      ~blog_posts_per_user:2 ()
  in
  let platform = society.Populate.platform in
  (* plant a canary in every profile *)
  List.iter
    (fun user ->
      let account = Platform.account_exn platform user in
      match
        Platform.write_user_record platform account ~file:"profile"
          (W5_store.Record.of_fields [ ("user", user); ("canary", canary user) ])
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed: %s" (W5_os.Os_error.to_string e))
    society.Populate.users;
  (* malicious apps in the mix, enabled by everyone *)
  let mal = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  List.iter
    (fun user ->
      match Platform.enable_app platform ~user ~app:"mal/thief" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    society.Populate.users;
  (* the long mixed trace *)
  let rng = Rng.create ~seed:(seed + 1) in
  let actions =
    Trace.generate rng ~society ~mix:Trace.read_heavy ~length:800
  in
  let outcome = Trace.replay society actions in
  check int_c "no unexpected failures" 0 outcome.Trace.failed;
  check bool_c "mostly served" true (outcome.Trace.ok > 400);
  (* interleave thief probes from every user against random targets *)
  let clients =
    List.map (fun u -> (u, Populate.login society u)) society.Populate.users
  in
  List.iter
    (fun (user, client) ->
      let target = Rng.pick rng society.Populate.users in
      if target <> user then
        ignore (Client.get client "/app/mal/thief" ~params:[ ("target", target) ]))
    clients;
  (* INVARIANT: nobody ever saw a canary that is not their own, unless
     its owner's friends-only declassifier approved them *)
  let friends_of user =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"friends" with
    | Ok r -> W5_store.Record.get_list r "friends"
    | Error _ -> []
  in
  List.iter
    (fun (viewer, client) ->
      List.iter
        (fun owner ->
          if viewer <> owner && not (List.mem viewer (friends_of owner)) then
            check bool_c
              (Printf.sprintf "%s never saw %s's canary" viewer owner)
              false
              (Client.saw client (canary owner)))
        society.Populate.users)
    clients;
  (* INVARIANT: no bottom-labeled file anywhere contains a canary *)
  let fs = W5_os.Kernel.fs (Platform.kernel platform) in
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1)) in
    nn = 0 || scan 0
  in
  let rec walk path bad =
    match W5_os.Fs.stat fs path with
    | Error _ -> bad
    | Ok st -> (
        match st.W5_os.Fs.kind with
        | W5_os.Fs.Directory -> (
            match W5_os.Fs.readdir fs path with
            | Error _ -> bad
            | Ok (names, _) ->
                List.fold_left
                  (fun bad name ->
                    walk (if path = "/" then "/" ^ name else path ^ "/" ^ name) bad)
                  bad names)
        | W5_os.Fs.Regular -> (
            match W5_os.Fs.read fs path with
            | Error _ -> bad
            | Ok (data, labels) ->
                if
                  Label.is_empty labels.Flow.secrecy
                  && List.exists
                       (fun u -> contains data (canary u))
                       society.Populate.users
                then path :: bad
                else bad))
  in
  check (Alcotest.list Alcotest.string) "no unlabeled canary copies" []
    (walk "/" []);
  (* INVARIANT: the audit log recorded at least one export denial per
     thief probe that got a 403 *)
  let export_denials =
    List.length
      (List.filter
         (fun e ->
           match e.W5_os.Audit.event with
           | W5_os.Audit.Export_attempted { decision = Error _; _ } -> true
           | _ -> false)
         (W5_os.Audit.entries (W5_os.Kernel.audit (Platform.kernel platform))))
  in
  check bool_c "export denials recorded" true (export_denials > 0);
  (* the society is still fully functional afterwards *)
  let u0 = List.hd society.Populate.users in
  let c = Populate.login society u0 in
  let r = Client.get c "/app/core/social" ~params:[ ("user", u0) ] in
  check int_c "still serving" 200 (Response.status_code r.Response.status)

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "soak: 800-action trace + attacks (seed %d)" seed)
        `Slow (test_soak ~seed))
    [ 1234; 777; 31337 ]
